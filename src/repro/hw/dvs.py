"""The SA-1100 DVS table and frequency-scaling laws.

The Itsy's StrongARM SA-1100 supports 11 clock frequencies from 59 to
206.4 MHz. Fig. 7 of the paper lists the frequency/voltage pairs used
on the testbed; :data:`SA1100_TABLE` reproduces them verbatim.

Two modelling assumptions, both stated by the paper:

- *Performance scales linearly with clock rate* (§4.3: "the performance
  degrades linearly with the clock rate") — :meth:`DVSTable.scale_time`.
- *Communication delay does not depend on clock rate* (§6.3: "from our
  measurement communication delay does not increase at a lower clock
  rate") — the link model never consults the CPU frequency.
"""

from __future__ import annotations

import bisect
import dataclasses
import typing as t

from repro.errors import ConfigurationError, InfeasiblePartitionError

__all__ = ["FrequencyLevel", "DVSTable", "SA1100_TABLE"]


@dataclasses.dataclass(frozen=True, order=True)
class FrequencyLevel:
    """One DVS operating point: a (frequency, core voltage) pair.

    Ordering and equality are by ``(mhz, volts)`` so levels sort by
    performance.
    """

    mhz: float
    volts: float

    @property
    def switching_activity(self) -> float:
        """CMOS dynamic-power proxy ``f * V^2`` (MHz * V^2).

        Dynamic power in CMOS is ``P = C * f * V^2``; the per-mode
        current model in :mod:`repro.hw.power` is affine in this value.
        """
        return self.mhz * self.volts * self.volts

    def as_dict(self) -> dict[str, float]:
        """JSON-stable form for telemetry records and exports."""
        return {"mhz": self.mhz, "volts": self.volts}

    def __str__(self) -> str:
        return f"{self.mhz:g} MHz @ {self.volts:g} V"


# Fig. 7 of the paper: 11 frequency levels with their core voltages.
SA1100_TABLE_LEVELS: tuple[FrequencyLevel, ...] = (
    FrequencyLevel(59.0, 0.919),
    FrequencyLevel(73.7, 0.978),
    FrequencyLevel(88.5, 1.067),
    FrequencyLevel(103.2, 1.067),
    FrequencyLevel(118.0, 1.126),
    FrequencyLevel(132.7, 1.156),
    FrequencyLevel(147.5, 1.156),
    FrequencyLevel(162.2, 1.215),
    FrequencyLevel(176.9, 1.304),
    FrequencyLevel(191.7, 1.363),
    FrequencyLevel(206.4, 1.393),
)


class DVSTable:
    """An ordered set of DVS operating points with lookup helpers.

    Parameters
    ----------
    levels:
        Frequency levels in strictly increasing frequency order.

    Raises
    ------
    ConfigurationError
        If the table is empty, unsorted, or contains duplicates.
    """

    def __init__(self, levels: t.Sequence[FrequencyLevel]):
        if not levels:
            raise ConfigurationError("DVS table must contain at least one level")
        freqs = [lv.mhz for lv in levels]
        if any(b <= a for a, b in zip(freqs, freqs[1:])):
            raise ConfigurationError(
                "DVS table frequencies must be strictly increasing"
            )
        if any(lv.volts <= 0 or lv.mhz <= 0 for lv in levels):
            raise ConfigurationError("frequencies and voltages must be positive")
        self.levels: tuple[FrequencyLevel, ...] = tuple(levels)
        self._freqs = freqs

    # -- basic lookups -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self) -> t.Iterator[FrequencyLevel]:
        return iter(self.levels)

    @property
    def min(self) -> FrequencyLevel:
        """Slowest operating point (59 MHz on the Itsy)."""
        return self.levels[0]

    @property
    def max(self) -> FrequencyLevel:
        """Fastest operating point (206.4 MHz on the Itsy)."""
        return self.levels[-1]

    def level_at(self, mhz: float) -> FrequencyLevel:
        """Return the level with exactly this frequency.

        Raises
        ------
        ConfigurationError
            If ``mhz`` is not in the table (the SA-1100 cannot run at
            arbitrary frequencies).
        """
        i = bisect.bisect_left(self._freqs, mhz)
        if i < len(self._freqs) and abs(self._freqs[i] - mhz) < 1e-9:
            return self.levels[i]
        raise ConfigurationError(
            f"{mhz} MHz is not an SA-1100 operating point; "
            f"valid: {', '.join(f'{f:g}' for f in self._freqs)}"
        )

    def ceil(self, mhz: float) -> FrequencyLevel:
        """Slowest level with frequency >= ``mhz`` (deadline rounding).

        This is how a required frequency derived from a timing budget is
        mapped onto real hardware: round *up* so the deadline still holds.

        Raises
        ------
        InfeasiblePartitionError
            If ``mhz`` exceeds the fastest level — the paper's scheme 3,
            which would need ~380 MHz.
        """
        if mhz > self._freqs[-1] + 1e-9:
            raise InfeasiblePartitionError(
                f"required {mhz:.1f} MHz exceeds the maximum clock rate "
                f"{self._freqs[-1]:g} MHz",
                required_mhz=mhz,
            )
        i = bisect.bisect_left(self._freqs, mhz - 1e-9)
        return self.levels[min(i, len(self.levels) - 1)]

    def floor(self, mhz: float) -> FrequencyLevel:
        """Fastest level with frequency <= ``mhz`` (clamps to the minimum)."""
        i = bisect.bisect_right(self._freqs, mhz + 1e-9) - 1
        return self.levels[max(i, 0)]

    def step_up(self, level: FrequencyLevel, steps: int = 1) -> FrequencyLevel:
        """The level ``steps`` positions faster (clamped at the maximum)."""
        i = self.levels.index(level)
        return self.levels[min(i + steps, len(self.levels) - 1)]

    def step_down(self, level: FrequencyLevel, steps: int = 1) -> FrequencyLevel:
        """The level ``steps`` positions slower (clamped at the minimum)."""
        i = self.levels.index(level)
        return self.levels[max(i - steps, 0)]

    def subsampled(self, step: int) -> "DVSTable":
        """A coarser table keeping every ``step``-th level.

        The slowest and fastest levels are always retained (the
        endpoints define the platform's range). Used by the
        level-granularity ablation: the paper's SA-1100 exposes 11
        points; how much would fewer (or more) matter?
        """
        if step < 1:
            raise ConfigurationError(f"step must be >= 1, got {step}")
        kept = list(self.levels[::step])
        if self.levels[-1] not in kept:
            kept.append(self.levels[-1])
        return DVSTable(kept)

    # -- scaling laws --------------------------------------------------
    def scale_time(self, seconds_at_max: float, level: FrequencyLevel) -> float:
        """Execution time of a task profiled at the fastest level.

        Linear performance scaling: a task taking ``seconds_at_max`` at
        ``self.max`` takes ``seconds_at_max * f_max / f`` at ``level``.
        """
        if seconds_at_max < 0:
            raise ConfigurationError("task time must be non-negative")
        return seconds_at_max * self.max.mhz / level.mhz

    def required_mhz(self, seconds_at_max: float, budget_seconds: float) -> float:
        """Continuous frequency needed to fit the task in ``budget_seconds``.

        The result is a *real* frequency; pass it to :meth:`ceil` to get
        an actual operating point. A non-positive budget with non-zero
        work is infeasible and returns ``inf``.
        """
        if seconds_at_max < 0:
            raise ConfigurationError("task time must be non-negative")
        if seconds_at_max == 0:
            return 0.0
        if budget_seconds <= 0:
            return float("inf")
        return self.max.mhz * seconds_at_max / budget_seconds


#: The table used by every experiment in the paper.
SA1100_TABLE = DVSTable(SA1100_TABLE_LEVELS)
