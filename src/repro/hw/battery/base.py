"""Abstract battery interface.

All battery models integrate *piecewise-constant* current loads: the
node's power-mode state machine guarantees the draw only changes at
discrete events, so a model needs exactly two operations —

- :meth:`Battery.draw`: advance the state under a constant current for
  a known duration;
- :meth:`Battery.time_to_death`: predict, from the current state, how
  long a constant current can be sustained before the cell is empty.

The prediction is what lets the simulator schedule an exact death event
whenever the load changes, instead of polling.
"""

from __future__ import annotations

import abc

from repro.errors import BatteryError
from repro.units import mas_to_mah

__all__ = ["Battery"]


class Battery(abc.ABC):
    """A battery integrating piecewise-constant current loads.

    Canonical units: current in mA, charge in mA*s, time in seconds.
    """

    def __init__(self, capacity_mah: float):
        if capacity_mah <= 0:
            raise BatteryError(f"capacity must be positive, got {capacity_mah} mAh")
        self.capacity_mah = float(capacity_mah)
        self._delivered_mas = 0.0

    # -- required model behaviour ---------------------------------------
    @abc.abstractmethod
    def _advance(self, current_ma: float, dt_s: float) -> None:
        """Advance internal state by ``dt_s`` seconds at ``current_ma``."""

    @abc.abstractmethod
    def time_to_death(self, current_ma: float) -> float:
        """Seconds until exhaustion under constant ``current_ma``.

        Returns ``0.0`` if already dead and ``float('inf')`` if the
        current is sustainable forever (e.g. zero draw).
        """

    def time_to_death_lower_bound(self, current_ma: float) -> float:
        """A cheap lower bound on :meth:`time_to_death`.

        Callers that only need to know death is *not before* some time
        (e.g. the node's death-timer scheduling) use this to avoid the
        exact root solve on every load change. The default is the exact
        value; models with expensive exact solutions override it.
        """
        return self.time_to_death(current_ma)

    @abc.abstractmethod
    def charge_fraction(self) -> float:
        """Remaining usable charge as a fraction of nominal capacity.

        For models with bound charge this counts *all* remaining charge
        (available + bound); it is a reporting quantity, not a death
        predictor.
        """

    @abc.abstractmethod
    def reset(self) -> None:
        """Restore the factory-fresh (fully charged) state."""

    # -- shared behaviour ----------------------------------------------
    @property
    def is_dead(self) -> bool:
        """True once the cell can no longer sustain any load."""
        return self.time_to_death(1e-9) <= 0.0

    @property
    def delivered_mah(self) -> float:
        """Total charge actually delivered so far, in mAh."""
        return mas_to_mah(self._delivered_mas)

    def draw(self, current_ma: float, dt_s: float) -> None:
        """Integrate a constant ``current_ma`` load over ``dt_s`` seconds.

        Raises
        ------
        BatteryError
            If the current is negative (charging is out of scope), the
            duration is negative, or the load would exhaust the cell
            *before* ``dt_s`` elapses — callers must consult
            :meth:`time_to_death` first and truncate the segment.
        """
        if current_ma < 0:
            raise BatteryError(f"negative current {current_ma} mA (charging unsupported)")
        if dt_s < 0:
            raise BatteryError(f"negative duration {dt_s} s")
        if dt_s == 0.0:
            return
        # Fast path: the cheap bound usually proves the segment is safe;
        # the exact (and possibly expensive) solve runs only near death.
        if self.time_to_death_lower_bound(current_ma) < dt_s - 1e-9:
            ttd = self.time_to_death(current_ma)
            if ttd < dt_s - 1e-9:
                raise BatteryError(
                    f"battery dies after {ttd:.3f}s but draw() asked for {dt_s:.3f}s "
                    f"at {current_ma:.1f} mA; truncate the segment at time_to_death()"
                )
        self._advance(current_ma, dt_s)
        self._delivered_mas += current_ma * dt_s

    def _reset_delivery(self) -> None:
        """Helper for subclasses' :meth:`reset`."""
        self._delivered_mas = 0.0
