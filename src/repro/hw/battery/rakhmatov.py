"""The Rakhmatov-Vrudhula diffusion battery model.

Rakhmatov & Vrudhula (2001) model the cell as one-dimensional
diffusion of the active species; the *apparent* charge consumed by a
load profile i(t) is

    sigma(t) = a(t) + 2 * sum_{m=1..inf} S_m(t)

where ``a`` is the plain delivered charge and each diffusion harmonic
obeys the linear ODE

    dS_m/dt = i(t) - (beta^2 m^2) S_m ,    S_m(0) = 0.

The cell dies when ``sigma`` reaches the capacity parameter ``alpha``.
At rest the harmonics decay, so ``sigma`` falls back toward ``a`` —
the recovery effect; under sustained load the harmonics inflate
``sigma`` above ``a`` — the rate-capacity effect. Truncating the series
at ``n_terms`` harmonics gives a finite state with exact
constant-current steps, the same property that makes KiBaM cheap.

Jongerden & Haverkort (2009) compare this model directly against KiBaM
(KiBaM is its first-order approximation); having both lets the ablation
suite ask whether the paper's conclusions depend on which diffusion
approximation is used.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import brentq

from repro.errors import BatteryError
from repro.hw.battery.base import Battery
from repro.units import mah_to_mas

__all__ = ["RakhmatovBattery"]


class RakhmatovBattery(Battery):
    """Diffusion-based battery with truncated-series state.

    Parameters
    ----------
    capacity_mah:
        The ``alpha`` parameter expressed as deliverable charge at
        vanishing rate (mAh).
    beta_per_sqrt_s:
        Diffusion parameter ``beta``; smaller values mean slower
        diffusion, i.e. stronger rate-capacity and recovery effects.
        Rakhmatov & Vrudhula report beta^2 in the 1e-4..1e-2 1/s range
        for Li-ion cells.
    n_terms:
        Harmonics kept in the truncated series (10 is ample: the m-th
        term decays like exp(-beta^2 m^2 t)).
    """

    def __init__(
        self,
        capacity_mah: float,
        beta_per_sqrt_s: float = 0.03,
        n_terms: int = 10,
    ):
        super().__init__(capacity_mah)
        if beta_per_sqrt_s <= 0:
            raise BatteryError(f"beta must be positive: {beta_per_sqrt_s}")
        if n_terms < 1:
            raise BatteryError(f"need at least one series term: {n_terms}")
        self.beta = float(beta_per_sqrt_s)
        self.n_terms = int(n_terms)
        #: Decay rate of each harmonic, 1/s.
        self._rates = np.array(
            [self.beta**2 * m**2 for m in range(1, self.n_terms + 1)]
        )
        self._alpha_mas = mah_to_mas(capacity_mah)
        self._a_mas = 0.0  # plain delivered charge
        self._s_mas = np.zeros(self.n_terms)  # diffusion harmonics
        self._dead = False

    # -- state -------------------------------------------------------------
    @property
    def apparent_charge_mas(self) -> float:
        """sigma(t): delivered charge plus diffusion penalty."""
        return self._a_mas + 2.0 * float(self._s_mas.sum())

    @property
    def unavailable_mas(self) -> float:
        """The diffusion penalty alone (recoverable at rest)."""
        return 2.0 * float(self._s_mas.sum())

    def charge_fraction(self) -> float:
        return max(0.0, 1.0 - self._a_mas / self._alpha_mas)

    # -- stepping ----------------------------------------------------------
    def _sigma_after(self, current_ma: float, dt_s: float) -> float:
        decay = np.exp(-self._rates * dt_s)
        s_next = self._s_mas * decay + current_ma * (1.0 - decay) / self._rates
        return self._a_mas + current_ma * dt_s + 2.0 * float(s_next.sum())

    def preview(self, current_ma: float, dt_s: float) -> float:
        """Apparent charge sigma after a constant-current step, without
        mutating the cell."""
        if current_ma < 0 or dt_s < 0:
            raise BatteryError("preview needs non-negative current and duration")
        return self._sigma_after(current_ma, dt_s)

    def _advance(self, current_ma: float, dt_s: float) -> None:
        decay = np.exp(-self._rates * dt_s)
        self._s_mas = (
            self._s_mas * decay + current_ma * (1.0 - decay) / self._rates
        )
        self._a_mas += current_ma * dt_s
        if self.apparent_charge_mas >= self._alpha_mas - 1e-5:
            self._dead = True

    # -- death prediction -------------------------------------------------
    def time_to_death(self, current_ma: float) -> float:
        """Solve ``sigma(t) = alpha`` for constant ``current_ma``."""
        if current_ma < 0:
            raise BatteryError(f"negative current {current_ma} mA")
        headroom = self._alpha_mas - self.apparent_charge_mas
        if self._dead or headroom <= 1e-5:
            return 0.0
        if current_ma == 0.0:
            return float("inf")

        def overshoot(dt: float) -> float:
            return self._sigma_after(current_ma, dt) - self._alpha_mas

        lo = 0.0
        hi = headroom / current_ma  # sigma grows at least as fast as a
        if not hi < 1e12:
            return float("inf")
        while overshoot(hi) < 0.0:
            lo = hi
            hi *= 2.0
            if hi > 1e12:  # pragma: no cover - defensive
                return float("inf")
        return float(brentq(overshoot, lo, hi, xtol=1e-9, rtol=1e-12))

    def time_to_death_lower_bound(self, current_ma: float) -> float:
        """Cheap bound: sigma rises at most at ``I * (1 + 2*n_terms)``."""
        if current_ma < 0:
            raise BatteryError(f"negative current {current_ma} mA")
        headroom = self._alpha_mas - self.apparent_charge_mas
        if self._dead or headroom <= 1e-5:
            return 0.0
        if current_ma == 0.0:
            return float("inf")
        return headroom / (current_ma * (1.0 + 2.0 * self.n_terms))

    def reset(self) -> None:
        self._a_mas = 0.0
        self._s_mas = np.zeros(self.n_terms)
        self._dead = False
        self._reset_delivery()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Rakhmatov sigma={self.apparent_charge_mas / 3600:.1f} mAh "
            f"of {self.capacity_mah:.1f} mAh>"
        )
