"""Battery telemetry, mirroring Itsy's on-board power instrumentation.

The paper collected its power profile with "Itsy's built-in power
monitor" (§4.4). :class:`BatteryMonitor` plays that role in the
simulation: it samples state-of-charge over time and accumulates
per-mode charge so figures and tests can ask "how much charge went to
communication vs computation".
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.hw.battery.base import Battery

__all__ = ["BatterySample", "BatteryMonitor"]


@dataclasses.dataclass(frozen=True)
class BatterySample:
    """One telemetry point.

    Attributes
    ----------
    time_s:
        Simulated time of the sample.
    charge_fraction:
        Remaining charge fraction (available + bound) at that time.
    current_ma:
        Current draw in effect when the sample was taken.
    mode:
        Power-mode label in effect (``"idle"``, ``"communication"``...).
    """

    time_s: float
    charge_fraction: float
    current_ma: float
    mode: str


class BatteryMonitor:
    """Records samples and per-mode charge for one battery.

    Parameters
    ----------
    battery:
        The cell being observed.
    sample_interval_s:
        Minimum spacing between stored samples; draws arriving faster
        update accumulators but do not append samples. ``0`` stores
        every draw.
    """

    def __init__(self, battery: Battery, sample_interval_s: float = 60.0):
        self.battery = battery
        self.sample_interval_s = sample_interval_s
        self.samples: list[BatterySample] = []
        self.charge_by_mode_mas: dict[str, float] = {}
        self.time_by_mode_s: dict[str, float] = {}
        self._last_sample_time = -float("inf")

    def observe(self, time_s: float, current_ma: float, dt_s: float, mode: str) -> None:
        """Account one constant-current segment ending at ``time_s``."""
        self.charge_by_mode_mas[mode] = (
            self.charge_by_mode_mas.get(mode, 0.0) + current_ma * dt_s
        )
        self.time_by_mode_s[mode] = self.time_by_mode_s.get(mode, 0.0) + dt_s
        if time_s - self._last_sample_time >= self.sample_interval_s:
            self.samples.append(
                BatterySample(
                    time_s=time_s,
                    charge_fraction=self.battery.charge_fraction(),
                    current_ma=current_ma,
                    mode=mode,
                )
            )
            self._last_sample_time = time_s

    @property
    def total_charge_mas(self) -> float:
        """Total charge accounted across all modes, mA*s."""
        return sum(self.charge_by_mode_mas.values())

    def mode_share(self, mode: str) -> float:
        """Fraction of total charge drawn in ``mode`` (0 if nothing drawn)."""
        total = self.total_charge_mas
        if total <= 0:
            return 0.0
        return self.charge_by_mode_mas.get(mode, 0.0) / total

    def discharge_curve(self) -> list[tuple[float, float]]:
        """(time_s, charge_fraction) pairs for plotting."""
        return [(s.time_s, s.charge_fraction) for s in self.samples]
