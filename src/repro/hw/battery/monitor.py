"""Battery telemetry, mirroring Itsy's on-board power instrumentation.

The paper collected its power profile with "Itsy's built-in power
monitor" (§4.4). :class:`BatteryMonitor` plays that role in the
simulation: it samples state-of-charge over time and accumulates
per-mode charge so figures and tests can ask "how much charge went to
communication vs computation".
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.hw.battery.base import Battery

__all__ = ["BatterySample", "BatteryMonitor"]


@dataclasses.dataclass(frozen=True)
class BatterySample:
    """One telemetry point.

    Attributes
    ----------
    time_s:
        Simulated time of the sample.
    charge_fraction:
        Remaining charge fraction (available + bound) at that time.
    current_ma:
        Current draw in effect when the sample was taken.
    mode:
        Power-mode label in effect (``"idle"``, ``"communication"``...).
    """

    time_s: float
    charge_fraction: float
    current_ma: float
    mode: str

    def as_dict(self) -> dict[str, t.Any]:
        """JSON-stable dict form; :meth:`from_dict` reloads it
        bit-identically (floats round-trip through ``repr``)."""
        return {
            "time_s": self.time_s,
            "charge_fraction": self.charge_fraction,
            "current_ma": self.current_ma,
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, payload: t.Mapping[str, t.Any]) -> "BatterySample":
        """Rebuild a sample from :meth:`as_dict` output."""
        return cls(
            time_s=payload["time_s"],
            charge_fraction=payload["charge_fraction"],
            current_ma=payload["current_ma"],
            mode=payload["mode"],
        )


class BatteryMonitor:
    """Records samples and per-mode charge for one battery.

    Parameters
    ----------
    battery:
        The cell being observed. ``None`` for a monitor rebuilt from
        serialized samples (:meth:`from_dict`): the recorded telemetry
        is fully usable but :meth:`observe` needs a live cell.
    sample_interval_s:
        Minimum spacing between stored samples; draws arriving faster
        update accumulators but do not append samples. ``0`` stores
        every draw.
    obs:
        Optional event bus; each *stored* sample also publishes a
        ``battery.draw`` event (throttled at the sampling interval, so
        the bus sees telemetry-rate traffic, not per-segment traffic).
    """

    def __init__(
        self,
        battery: Battery | None,
        sample_interval_s: float = 60.0,
        name: str = "",
        obs: t.Any = None,
    ):
        self.battery = battery
        self.sample_interval_s = sample_interval_s
        self.name = name
        # Falsy bus -> None: observe() runs once per power-mode segment.
        self.obs = obs if obs else None
        self.samples: list[BatterySample] = []
        self.charge_by_mode_mas: dict[str, float] = {}
        self.time_by_mode_s: dict[str, float] = {}
        self._last_sample_time = -float("inf")

    def observe(self, time_s: float, current_ma: float, dt_s: float, mode: str) -> None:
        """Account one constant-current segment ending at ``time_s``."""
        self.charge_by_mode_mas[mode] = (
            self.charge_by_mode_mas.get(mode, 0.0) + current_ma * dt_s
        )
        self.time_by_mode_s[mode] = self.time_by_mode_s.get(mode, 0.0) + dt_s
        if time_s - self._last_sample_time >= self.sample_interval_s:
            assert self.battery is not None, "reloaded monitors cannot observe"
            fraction = self.battery.charge_fraction()
            self.samples.append(
                BatterySample(
                    time_s=time_s,
                    charge_fraction=fraction,
                    current_ma=current_ma,
                    mode=mode,
                )
            )
            self._last_sample_time = time_s
            if self.obs is not None:
                self.obs.emit(
                    "battery.draw",
                    time_s,
                    self.name,
                    charge_fraction=fraction,
                    current_ma=current_ma,
                    mode=mode,
                )

    @property
    def total_charge_mas(self) -> float:
        """Total charge accounted across all modes, mA*s."""
        return sum(self.charge_by_mode_mas.values())

    def mode_share(self, mode: str) -> float:
        """Fraction of total charge drawn in ``mode`` (0 if nothing drawn)."""
        total = self.total_charge_mas
        if total <= 0:
            return 0.0
        return self.charge_by_mode_mas.get(mode, 0.0) / total

    def discharge_curve(self) -> list[tuple[float, float]]:
        """(time_s, charge_fraction) pairs for plotting."""
        return [(s.time_s, s.charge_fraction) for s in self.samples]

    # -- serialization -----------------------------------------------------
    def as_dict(self) -> dict[str, t.Any]:
        """JSON payload (samples + accumulators) for caches and workers."""
        return {
            "sample_interval_s": self.sample_interval_s,
            "name": self.name,
            "samples": [s.as_dict() for s in self.samples],
            "charge_by_mode_mas": dict(self.charge_by_mode_mas),
            "time_by_mode_s": dict(self.time_by_mode_s),
        }

    @classmethod
    def from_dict(cls, payload: t.Mapping[str, t.Any]) -> "BatteryMonitor":
        """Rebuild a (battery-less) monitor from :meth:`as_dict` output.

        The reload is bit-identical for every recorded quantity; only
        the live :attr:`battery` handle is absent, so the monitor is
        read-only.
        """
        monitor = cls(
            battery=None,
            sample_interval_s=payload.get("sample_interval_s", 60.0),
            name=payload.get("name", ""),
        )
        monitor.samples = [
            BatterySample.from_dict(s) for s in payload.get("samples", [])
        ]
        monitor.charge_by_mode_mas = dict(payload.get("charge_by_mode_mas", {}))
        monitor.time_by_mode_s = dict(payload.get("time_by_mode_s", {}))
        if monitor.samples:
            monitor._last_sample_time = monitor.samples[-1].time_s
        return monitor
