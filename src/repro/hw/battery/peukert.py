"""Peukert-law battery: rate-capacity effect without recovery.

Peukert's empirical law says a cell rated ``C`` at reference current
``I_ref`` sustains current ``I`` for ``t = (C / I_ref) * (I_ref / I)^p``
with exponent ``p > 1``. Equivalently, drawing ``I`` consumes
*effective* charge at rate ``I * (I / I_ref)^(p - 1)``.

This model penalizes high currents like KiBaM does, but resting never
recovers anything — so it separates, in the ablation benches, how much
of the paper's story is rate-capacity and how much is recovery.
"""

from __future__ import annotations

from repro.errors import BatteryError
from repro.hw.battery.base import Battery
from repro.units import mah_to_mas

__all__ = ["PeukertBattery"]


class PeukertBattery(Battery):
    """Battery obeying Peukert's law.

    Parameters
    ----------
    capacity_mah:
        Rated capacity at the reference current.
    reference_ma:
        Discharge current at which the rated capacity is delivered.
    exponent:
        Peukert exponent ``p``; 1.0 degenerates to a linear battery,
        typical Li-ion values are 1.05-1.3.
    """

    def __init__(self, capacity_mah: float, reference_ma: float = 60.0, exponent: float = 1.2):
        super().__init__(capacity_mah)
        if reference_ma <= 0:
            raise BatteryError(f"reference current must be positive: {reference_ma}")
        if exponent < 1.0:
            raise BatteryError(f"Peukert exponent must be >= 1: {exponent}")
        self.reference_ma = float(reference_ma)
        self.exponent = float(exponent)
        self._remaining_effective_mas = mah_to_mas(capacity_mah)

    def effective_rate(self, current_ma: float) -> float:
        """Effective charge-consumption rate for a real current, mA."""
        if current_ma == 0.0:
            return 0.0
        return current_ma * (current_ma / self.reference_ma) ** (self.exponent - 1.0)

    def charge_fraction(self) -> float:
        return max(0.0, self._remaining_effective_mas / mah_to_mas(self.capacity_mah))

    def _advance(self, current_ma: float, dt_s: float) -> None:
        self._remaining_effective_mas -= self.effective_rate(current_ma) * dt_s
        if self._remaining_effective_mas < 0.0:
            if self._remaining_effective_mas < -1e-6:
                raise BatteryError("Peukert battery over-drawn; truncate at time_to_death()")
            self._remaining_effective_mas = 0.0

    def preview(self, current_ma: float, dt_s: float) -> float:
        """Remaining effective charge after a constant-current step,
        without mutating the cell (no death clamp — may go negative)."""
        if current_ma < 0 or dt_s < 0:
            raise BatteryError("preview needs non-negative current and duration")
        return self._remaining_effective_mas - self.effective_rate(current_ma) * dt_s

    def time_to_death(self, current_ma: float) -> float:
        if current_ma < 0:
            raise BatteryError(f"negative current {current_ma} mA")
        if self._remaining_effective_mas <= 0.0:
            return 0.0
        if current_ma == 0.0:
            return float("inf")
        return self._remaining_effective_mas / self.effective_rate(current_ma)

    def reset(self) -> None:
        self._remaining_effective_mas = mah_to_mas(self.capacity_mah)
        self._reset_delivery()
