"""Battery models.

The paper's central surprise — aggregate energy savings do not
translate into battery lifetime — rests on two nonlinear battery
phenomena, both visible in its measurements:

- the **rate-capacity effect**: high discharge currents exhaust the
  cell before its nominal capacity is delivered (experiments 0A vs 0B);
- the **recovery effect**: resting (or lightly loading) the cell lets
  bound charge diffuse back and recovers capacity (invoked explicitly
  in §6.3 to explain F(1A) > F(0A)).

:class:`KiBaM` — the Kinetic Battery Model — exhibits both and admits a
closed-form solution for piecewise-constant loads, so discharge runs
spanning simulated days cost microseconds. :class:`LinearBattery`
(ideal charge bucket) and :class:`PeukertBattery` (rate-capacity only,
no recovery) serve as ablation baselines, and
:class:`RakhmatovBattery` (the diffusion model KiBaM approximates)
checks that conclusions do not hinge on the choice of approximation.
"""

from repro.hw.battery.base import Battery
from repro.hw.battery.kibam import KiBaM, KiBaMParameters, PAPER_BATTERY
from repro.hw.battery.linear import LinearBattery
from repro.hw.battery.monitor import BatteryMonitor, BatterySample
from repro.hw.battery.peukert import PeukertBattery
from repro.hw.battery.rakhmatov import RakhmatovBattery
from repro.hw.battery.voltage import LIION_OCV, OcvCurve, VoltageAwareBattery

__all__ = [
    "Battery",
    "KiBaM",
    "KiBaMParameters",
    "PAPER_BATTERY",
    "LinearBattery",
    "PeukertBattery",
    "RakhmatovBattery",
    "VoltageAwareBattery",
    "OcvCurve",
    "LIION_OCV",
    "BatteryMonitor",
    "BatterySample",
]
