"""The Kinetic Battery Model (KiBaM).

KiBaM (Manwell & McGowan, 1993) pictures the cell as two connected
wells of charge:

- the **available well** ``y1`` (a fraction ``c`` of total capacity)
  feeds the load directly;
- the **bound well** ``y2`` (fraction ``1 - c``) replenishes the
  available well through a valve with rate constant ``k'``.

The cell is *dead* when the available well empties, even if bound
charge remains — that is the rate-capacity effect. When the load drops,
bound charge keeps flowing into the available well — that is the
recovery effect. Jongerden & Haverkort ("Which battery model to use?",
IET Software 2009) found KiBaM the best-suited analytical model for
exactly the kind of duty-cycled embedded loads this paper measures.

For a constant current ``I`` over an interval of length ``t`` the ODEs
have the closed form (``k'`` below, ``y0 = y1_0 + y2_0``)::

    y1(t) = y1_0*e^{-k't} + (y0*k'*c - I)(1 - e^{-k't})/k'
            - I*c*(k't - 1 + e^{-k't})/k'
    y2(t) = y2_0*e^{-k't} + y0*(1-c)(1 - e^{-k't})
            - I*(1-c)*(k't - 1 + e^{-k't})/k'

which conserves charge exactly: ``y1(t) + y2(t) = y0 - I*t``.

The paper-calibrated parameters (see :mod:`repro.core.calibration` and
DESIGN.md) are exposed as :data:`PAPER_BATTERY`.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from scipy.optimize import brentq

from repro.errors import BatteryError
from repro.hw.battery.base import Battery
from repro.units import SECONDS_PER_HOUR, mah_to_mas

__all__ = ["KiBaMParameters", "KiBaM", "PAPER_BATTERY", "lifetime_seconds"]


@dataclasses.dataclass(frozen=True)
class KiBaMParameters:
    """KiBaM parameter set.

    Attributes
    ----------
    capacity_mah:
        Total charge in both wells when fully charged.
    c:
        Fraction of capacity in the available well, in (0, 1).
    k_prime_per_hour:
        Diffusion rate constant ``k' = k / (c * (1 - c))``, per hour.
    """

    capacity_mah: float
    c: float
    k_prime_per_hour: float

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise BatteryError(f"capacity must be positive: {self.capacity_mah}")
        if not 0.0 < self.c < 1.0:
            raise BatteryError(f"c must be in (0, 1): {self.c}")
        if self.k_prime_per_hour <= 0:
            raise BatteryError(f"k' must be positive: {self.k_prime_per_hour}")

    @property
    def k_prime_per_second(self) -> float:
        """Rate constant in canonical per-second units."""
        return self.k_prime_per_hour / SECONDS_PER_HOUR


#: Parameters calibrated against five of the paper's measured
#: lifetimes — (0A) 3.4 h, (0B) 12.9 h, (1) 6.13 h, (1A) 7.6 h and
#: (2) 14.1 h — by :func:`repro.core.calibration.calibrate_battery`
#: (jointly with the power model's idle curve and io_activity). The
#: capacity is an *effective model* parameter: with the small
#: available-charge fraction c, only ~40-70% of it is deliverable at
#: the paper's discharge rates, consistent with the physical pack
#: being smaller.
PAPER_KIBAM_PARAMETERS = KiBaMParameters(
    capacity_mah=1251.19, c=0.22628, k_prime_per_hour=0.42188
)


class KiBaM(Battery):
    """Kinetic Battery Model with closed-form constant-current stepping.

    Examples
    --------
    A rest period recovers available charge from the bound well:

    >>> cell = KiBaM(KiBaMParameters(1000.0, 0.3, 1.0))
    >>> cell.draw(200.0, 3600.0)         # one hour at 200 mA
    >>> before = cell.available_mas
    >>> cell.draw(0.0, 1800.0)           # rest half an hour
    >>> cell.available_mas > before
    True
    """

    #: Available charge (mA*s) at or below which the cell is considered
    #: exhausted. Absorbs root-solver residue at the death boundary; at
    #: paper currents it corresponds to well under a microsecond of load.
    DEATH_EPS_MAS = 1e-5

    #: Cap on the per-duration factor cache (the engine's duty cycles
    #: repeat a small set of segment lengths; anything past this is a
    #: pathological workload and we just start over).
    _FACTOR_CACHE_MAX = 4096

    def __init__(self, params: KiBaMParameters):
        super().__init__(params.capacity_mah)
        self.params = params
        total = mah_to_mas(params.capacity_mah)
        self._y1 = params.c * total
        self._y2 = (1.0 - params.c) * total
        self._dead = False
        # dt -> (ex, one_minus_ex, r): the duration-dependent factors of
        # the closed form, computed exactly as _step computes them so the
        # fast path below is bit-identical to reference stepping.
        self._factors: dict[float, tuple[float, float, float]] = {}

    # -- state inspection -------------------------------------------------
    @property
    def available_mas(self) -> float:
        """Charge in the available well, mA*s."""
        return self._y1

    @property
    def bound_mas(self) -> float:
        """Charge in the bound well, mA*s."""
        return self._y2

    def charge_fraction(self) -> float:
        total = mah_to_mas(self.params.capacity_mah)
        return max(0.0, (self._y1 + self._y2) / total)

    # -- closed-form stepping -------------------------------------------
    def _step(self, y1: float, y2: float, current_ma: float, dt_s: float) -> tuple[float, float]:
        """Pure function: the closed-form KiBaM step (no state change)."""
        kp = self.params.k_prime_per_second
        c = self.params.c
        y0 = y1 + y2
        x = kp * dt_s
        ex = math.exp(-x)
        # (x - 1 + e^-x)/kp, computed stably for small x via the series
        # x^2/2 - x^3/6 + ... (the naive form cancels catastrophically).
        if x < 1e-6:
            r = (x * x / 2.0 - x * x * x / 6.0) / kp
            one_minus_ex = x - x * x / 2.0 + x * x * x / 6.0
        else:
            r = (x - 1.0 + ex) / kp
            one_minus_ex = 1.0 - ex
        ny1 = y1 * ex + (y0 * kp * c - current_ma) * one_minus_ex / kp - current_ma * c * r
        ny2 = y2 * ex + y0 * (1.0 - c) * one_minus_ex - current_ma * (1.0 - c) * r
        return ny1, ny2

    def _dt_factors(self, dt_s: float) -> tuple[float, float, float]:
        """The duration-dependent closed-form factors, memoized per dt.

        Duty-cycled loads repeat the same handful of segment lengths
        hundreds of thousands of times; caching ``(e^-x, 1-e^-x, r)``
        removes the ``exp`` from the hot path. Values are computed with
        exactly the expressions :meth:`_step` uses (including the
        small-x series switch), so cached and uncached steps agree bit
        for bit.
        """
        cached = self._factors.get(dt_s)
        if cached is not None:
            return cached
        kp = self.params.k_prime_per_second
        x = kp * dt_s
        ex = math.exp(-x)
        if x < 1e-6:
            r = (x * x / 2.0 - x * x * x / 6.0) / kp
            one_minus_ex = x - x * x / 2.0 + x * x * x / 6.0
        else:
            r = (x - 1.0 + ex) / kp
            one_minus_ex = 1.0 - ex
        if len(self._factors) >= self._FACTOR_CACHE_MAX:
            self._factors.clear()
        self._factors[dt_s] = factors = (ex, one_minus_ex, r)
        return factors

    def draw(self, current_ma: float, dt_s: float) -> None:
        """Fused fast path of :meth:`Battery.draw` for the common case.

        Far from death the available well provably survives the step
        (it drains no faster than ``I``), so the generic safety dance —
        ``time_to_death_lower_bound`` then possibly the exact root
        solve — and the death latch are skipped, and the closed form is
        evaluated inline with cached per-duration factors. Arithmetic
        (expression order and the small-x series) is identical to
        :meth:`_step`, so fast and reference stepping produce bit-equal
        states. Near death, delegates to the careful base-class path.
        """
        y1 = self._y1
        if (
            self._dead
            or current_ma < 0
            or dt_s <= 0
            or current_ma * dt_s >= y1 - self.DEATH_EPS_MAS - 1e-9
        ):
            super().draw(current_ma, dt_s)
            return
        ex, one_minus_ex, r = self._dt_factors(dt_s)
        kp = self.params.k_prime_per_second
        c = self.params.c
        y2 = self._y2
        y0 = y1 + y2
        self._y1 = y1 * ex + (y0 * kp * c - current_ma) * one_minus_ex / kp - current_ma * c * r
        self._y2 = y2 * ex + y0 * (1.0 - c) * one_minus_ex - current_ma * (1.0 - c) * r
        self._delivered_mas += current_ma * dt_s

    def preview(self, current_ma: float, dt_s: float) -> tuple[float, float]:
        """The (y1, y2) state after a constant-current step, without
        mutating the cell. Fast path for duty-cycle sweeps."""
        if current_ma < 0 or dt_s < 0:
            raise BatteryError("preview needs non-negative current and duration")
        return self._step(self._y1, self._y2, current_ma, dt_s)

    # -- multi-step fast path -------------------------------------------
    def cycle_map(
        self, cycle: t.Sequence[tuple[float, float]]
    ) -> tuple[tuple[float, float, float, float, float, float], float]:
        """The affine map one duty cycle applies to the ``(y1, y2)`` state.

        For each constant-current segment the closed form is affine in
        the state, ``state' = M(dt) state + I * v(dt)``, so a whole
        piecewise-constant cycle composes into a single affine map
        ``(A, b)``. Returns ``((a11, a12, a21, a22, b1, b2), drain)``
        where ``drain`` is the total charge the cycle draws in mA*s.
        Charge conservation makes ``A`` column-stochastic, so its
        powers are numerically stable.
        """
        kp = self.params.k_prime_per_second
        c = self.params.c
        a11, a12, a21, a22 = 1.0, 0.0, 0.0, 1.0
        b1 = b2 = 0.0
        drain = 0.0
        for current_ma, dt_s in cycle:
            if current_ma < 0 or dt_s < 0:
                raise BatteryError("cycle needs non-negative currents and durations")
            ex, om, r = self._dt_factors(dt_s)
            # Segment map: y1' = y1 (ex + c om) + y2 (c om) - I (om/kp + c r)
            #              y2' = y1 ((1-c) om) + y2 (ex + (1-c) om) - I (1-c) r
            m11 = ex + c * om
            m12 = c * om
            m21 = (1.0 - c) * om
            m22 = ex + (1.0 - c) * om
            s1 = -current_ma * (om / kp + c * r)
            s2 = -current_ma * (1.0 - c) * r
            # Compose: new = M . (A state + b) + s
            a11, a12, a21, a22, b1, b2 = (
                m11 * a11 + m12 * a21,
                m11 * a12 + m12 * a22,
                m21 * a11 + m22 * a21,
                m21 * a12 + m22 * a22,
                m11 * b1 + m12 * b2 + s1,
                m21 * b1 + m22 * b2 + s2,
            )
            drain += current_ma * dt_s
        return (a11, a12, a21, a22, b1, b2), drain

    def advance_cycles(
        self, cycle: t.Sequence[tuple[float, float]], n_cycles: int
    ) -> None:
        """Advance ``n_cycles`` repetitions of a duty cycle analytically.

        One O(log n) affine-map power replaces ``n * len(cycle)``
        individual draws — this is what makes lifetime prediction over
        tens of thousands of frame cycles cheap. The caller must
        guarantee the cell survives every intermediate instant; the
        available well drains no faster than the cycle's total charge,
        so ``available_mas > (n_cycles + 1) * drain`` is a sufficient
        margin (see :func:`repro.core.calibration.predicted_lifetime_hours`).
        """
        if n_cycles < 0:
            raise BatteryError(f"cycle count must be >= 0, got {n_cycles}")
        if n_cycles == 0 or not cycle:
            return
        if self._dead:
            raise BatteryError("cannot advance a dead cell")
        (a11, a12, a21, a22, b1, b2), drain = self.cycle_map(cycle)
        if self._y1 - n_cycles * drain <= self.DEATH_EPS_MAS:
            raise BatteryError(
                f"advance_cycles({n_cycles}) may cross death; "
                "leave at least one cycle's drain of margin"
            )
        # Binary power of the affine map: (A, b)^2 = (A A, A b + b).
        r11, r12, r21, r22 = 1.0, 0.0, 0.0, 1.0
        c1 = c2 = 0.0
        n = n_cycles
        while n:
            if n & 1:
                r11, r12, r21, r22, c1, c2 = (
                    r11 * a11 + r12 * a21,
                    r11 * a12 + r12 * a22,
                    r21 * a11 + r22 * a21,
                    r21 * a12 + r22 * a22,
                    r11 * b1 + r12 * b2 + c1,
                    r21 * b1 + r22 * b2 + c2,
                )
            n >>= 1
            if n:
                a11, a12, a21, a22, b1, b2 = (
                    a11 * a11 + a12 * a21,
                    a11 * a12 + a12 * a22,
                    a21 * a11 + a22 * a21,
                    a21 * a12 + a22 * a22,
                    a11 * b1 + a12 * b2 + b1,
                    a21 * b1 + a22 * b2 + b2,
                )
        y1, y2 = self._y1, self._y2
        self._y1 = r11 * y1 + r12 * y2 + c1
        self._y2 = r21 * y1 + r22 * y2 + c2
        self._delivered_mas += n_cycles * drain

    def _advance(self, current_ma: float, dt_s: float) -> None:
        self._y1, self._y2 = self._step(self._y1, self._y2, current_ma, dt_s)
        if self._y1 < -1e-6:
            raise BatteryError(
                f"available charge went negative ({self._y1:.3g} mA*s); "
                "caller failed to truncate at time_to_death()"
            )
        # Death latches: once the available well empties (to within
        # solver residue), the cell is exhausted for good — the paper's
        # nodes do not come back after a battery failure, even though a
        # physical cell would recover a little charge at rest.
        if self._y1 <= self.DEATH_EPS_MAS:
            self._y1 = max(self._y1, 0.0)
            self._dead = True

    # -- death prediction -------------------------------------------------
    def time_to_death(self, current_ma: float) -> float:
        """Solve ``y1(t) = 0`` for constant ``current_ma``.

        For any positive current the available well eventually empties
        (asymptotically ``y1 ~ -I*c*t``), so a root always exists; it is
        found by geometric bracket expansion plus Brent's method.
        """
        if current_ma < 0:
            raise BatteryError(f"negative current {current_ma} mA")
        if self._dead or self._y1 <= self.DEATH_EPS_MAS:
            return 0.0
        if current_ma == 0.0:
            return float("inf")

        def y1_at(dt: float) -> float:
            return self._step(self._y1, self._y2, current_ma, dt)[0]

        # Ideal-battery bound: cannot die before delivering y1 from the
        # available well alone. Treat anything past ~30k years as never
        # (also guards vanishing currents, whose bound overflows).
        lo = 0.0
        hi = self._y1 / current_ma
        if not hi < 1e12:
            return float("inf")
        while y1_at(hi) > 0.0:
            lo = hi
            hi *= 2.0
            if hi > 1e12:
                return float("inf")
        if hi == lo:  # pragma: no cover - defensive
            return hi
        return float(brentq(y1_at, lo, hi, xtol=1e-9, rtol=1e-12))

    def time_to_death_lower_bound(self, current_ma: float) -> float:
        """Cheap lower bound: the available well drains no faster than I.

        During discharge the bound-to-available flow is non-negative
        (the available head never exceeds the bound head under a
        discharge-only history), so ``y1 / I`` underestimates the death
        time without any root solving.
        """
        if current_ma < 0:
            raise BatteryError(f"negative current {current_ma} mA")
        if self._dead or self._y1 <= self.DEATH_EPS_MAS:
            return 0.0
        if current_ma == 0.0:
            return float("inf")
        return self._y1 / current_ma

    def reset(self) -> None:
        total = mah_to_mas(self.params.capacity_mah)
        self._y1 = self.params.c * total
        self._y2 = (1.0 - self.params.c) * total
        self._dead = False
        self._reset_delivery()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<KiBaM y1={self._y1 / SECONDS_PER_HOUR:.1f} mAh "
            f"y2={self._y2 / SECONDS_PER_HOUR:.1f} mAh>"
        )


def lifetime_seconds(
    cell: KiBaM,
    cycle: t.Sequence[tuple[float, float]],
    limit_s: float,
    t_s: float = 0.0,
) -> tuple[float, int]:
    """Walk a repeating ``(current_ma, dt_s)`` duty cycle to death.

    This is the scalar reference loop every lifetime predictor shares:
    whole duty cycles are fast-forwarded with the exact affine cycle
    map (:meth:`KiBaM.advance_cycles`, O(log n) per jump) while the
    safety margin allows; the final approach to death walks segment by
    segment and solves the last partial segment exactly.
    :func:`repro.core.calibration.predicted_lifetime_hours` delegates
    here, and the vectorized cohort stepper in :mod:`repro.batch`
    replays exactly this jump/walk sequence per config — which is what
    makes scalar and batched sweeps bit-identical.

    Parameters
    ----------
    cell:
        The (possibly mid-life) cell to discharge; mutated in place.
    cycle:
        Piecewise-constant segments, repeated until death.
    limit_s:
        Absolute time horizon; the walk gives up once ``t`` reaches it.
    t_s:
        Time already elapsed (the horizon is absolute, not relative).

    Returns
    -------
    ``(death_s, completed_cycles)`` — the absolute death time in
    seconds (``math.inf`` when the cell is still alive at ``limit_s``)
    and the number of *whole* cycles completed before death. The cycle
    count is the batch layer's frame-count identity oracle.
    """
    cycle = [(current, dt) for current, dt in cycle]
    cycle_s = sum(dt for _, dt in cycle)
    if not cycle or cycle_s <= 0.0:
        raise BatteryError("duty cycle needs a positive total duration")
    drain_mas = sum(current * dt for current, dt in cycle)
    t = t_s
    cycles = 0
    while t < limit_s:
        if drain_mas > 0.0 and cycle_s > 0.0:
            # The available well drains no faster than one cycle's total
            # charge per cycle, so this many whole cycles provably end
            # with the cell still alive (see KiBaM.advance_cycles).
            safe = int(cell.available_mas / drain_mas) - 2
            remaining = int((limit_s - t) / cycle_s) + 1
            jump = min(safe, remaining)
            if jump > 0:
                cell.advance_cycles(cycle, jump)
                t += jump * cycle_s
                cycles += jump
                continue
        for current, dt_s in cycle:
            # Cheap-bound fast path; exact root solve only near death.
            if cell.time_to_death_lower_bound(current) <= dt_s:
                ttd = cell.time_to_death(current)
                if ttd <= dt_s:
                    return t + ttd, cycles
            cell.draw(current, dt_s)
            t += dt_s
        cycles += 1
    return math.inf, cycles


def PAPER_BATTERY() -> KiBaM:
    """A fresh battery with the paper-calibrated parameters.

    A factory rather than a module-level instance because batteries are
    stateful: each node (and each experiment) needs its own.
    """
    return KiBaM(PAPER_KIBAM_PARAMETERS)
