"""Pack-voltage sag and constant-power regulation.

The Itsy runs from a nominally 4 V Li-ion pack through a DC-DC
regulator. The electronics draw (roughly) constant *power*, so as the
pack's open-circuit voltage sags with state of charge, the *cell*
current rises above the nominal figure the Fig. 7 curves quote —
accelerating the end of discharge.

:class:`VoltageAwareBattery` wraps any base battery model with this
effect: a load current defined at ``nominal_volts`` is scaled by
``nominal_volts / (V(soc) * efficiency)`` before reaching the cell,
with the open-circuit voltage taken from a piecewise-linear
:class:`OcvCurve`. Death prediction replays the same quasi-static
sub-stepping on a copy of the cell, so the node's death-timer contract
(draw up to ``time_to_death`` never over-draws) still holds.

Note on calibration: the shipped KiBaM constants were fitted to the
paper's *measured lifetimes*, so they already absorb any sag present in
the hardware. Wrapping the calibrated cell therefore double-counts the
effect — the voltage-sag ablation uses the wrapper to bound how much of
the "effective capacity" story sag could account for, not to improve
the paper-faithful experiments.
"""

from __future__ import annotations

import copy
import typing as t

from repro.errors import BatteryError
from repro.hw.battery.base import Battery

__all__ = ["OcvCurve", "LIION_OCV", "VoltageAwareBattery"]


class OcvCurve:
    """Piecewise-linear open-circuit voltage vs state of charge.

    Parameters
    ----------
    points:
        (soc, volts) pairs with strictly increasing soc covering
        [0, 1]; voltages must be positive and non-decreasing in soc.
    """

    def __init__(self, points: t.Sequence[tuple[float, float]]):
        points = sorted((float(s), float(v)) for s, v in points)
        if len(points) < 2:
            raise BatteryError("an OCV curve needs at least two points")
        socs = [p[0] for p in points]
        volts = [p[1] for p in points]
        if socs[0] != 0.0 or socs[-1] != 1.0:
            raise BatteryError("OCV curve must cover soc = 0 .. 1")
        if any(b <= a for a, b in zip(socs, socs[1:])):
            raise BatteryError("OCV soc points must be strictly increasing")
        if any(v <= 0 for v in volts):
            raise BatteryError("OCV voltages must be positive")
        if any(b < a for a, b in zip(volts, volts[1:])):
            raise BatteryError("OCV voltage must be non-decreasing in soc")
        self.points = points

    def volts(self, soc: float) -> float:
        """Open-circuit voltage at a state of charge (clamped to [0, 1])."""
        soc = min(1.0, max(0.0, soc))
        for (s0, v0), (s1, v1) in zip(self.points, self.points[1:]):
            if soc <= s1:
                frac = (soc - s0) / (s1 - s0)
                return v0 + frac * (v1 - v0)
        return self.points[-1][1]  # pragma: no cover - clamped above

    @property
    def min_volts(self) -> float:
        """Voltage at empty — the worst case for current scaling."""
        return self.points[0][1]


#: A generic single-cell Li-ion shape, scaled to the Itsy's ~4 V pack.
LIION_OCV = OcvCurve(
    [(0.0, 3.3), (0.1, 3.6), (0.5, 3.75), (0.8, 3.95), (1.0, 4.15)]
)


class VoltageAwareBattery(Battery):
    """Wrap a battery with voltage-sag / constant-power current scaling.

    Parameters
    ----------
    inner:
        The cell model holding the actual charge state.
    ocv:
        Open-circuit voltage curve.
    nominal_volts:
        The voltage the load currents are quoted at (Fig. 7: ~4 V).
    efficiency:
        DC-DC conversion efficiency in (0, 1].
    substep_s:
        Quasi-static integration step: within each sub-step the scale
        factor is held at the entry state of charge. The pack's soc
        moves slowly (hours), so minutes-scale sub-steps are ample.
    """

    def __init__(
        self,
        inner: Battery,
        ocv: OcvCurve = LIION_OCV,
        nominal_volts: float = 4.0,
        efficiency: float = 0.9,
        substep_s: float = 60.0,
    ):
        super().__init__(inner.capacity_mah)
        if not 0.0 < efficiency <= 1.0:
            raise BatteryError(f"efficiency must be in (0, 1]: {efficiency}")
        if nominal_volts <= 0 or substep_s <= 0:
            raise BatteryError("nominal_volts and substep_s must be positive")
        self.inner = inner
        self.ocv = ocv
        self.nominal_volts = float(nominal_volts)
        self.efficiency = float(efficiency)
        self.substep_s = float(substep_s)

    # -- scaling ------------------------------------------------------------
    def _scale(self, cell: Battery) -> float:
        """Cell-current multiplier at the cell's present state of charge."""
        volts = self.ocv.volts(cell.charge_fraction())
        return self.nominal_volts / (volts * self.efficiency)

    def _max_scale(self) -> float:
        return self.nominal_volts / (self.ocv.min_volts * self.efficiency)

    # -- Battery contract -------------------------------------------------
    def charge_fraction(self) -> float:
        return self.inner.charge_fraction()

    def _advance(self, current_ma: float, dt_s: float) -> None:
        remaining = dt_s
        while remaining > 1e-12:
            step = min(self.substep_s, remaining)
            self.inner.draw(current_ma * self._scale(self.inner), step)
            remaining -= step

    def time_to_death(self, current_ma: float) -> float:
        """Replay the quasi-static discharge on a copy of the cell."""
        if current_ma < 0:
            raise BatteryError(f"negative current {current_ma} mA")
        if current_ma == 0.0:
            return self.inner.time_to_death(0.0)
        cell = copy.deepcopy(self.inner)
        elapsed = 0.0
        while True:
            scaled = current_ma * self.nominal_volts / (
                self.ocv.volts(cell.charge_fraction()) * self.efficiency
            )
            ttd = cell.time_to_death(scaled)
            if ttd <= self.substep_s:
                return elapsed + ttd
            cell.draw(scaled, self.substep_s)
            elapsed += self.substep_s

    def time_to_death_lower_bound(self, current_ma: float) -> float:
        """Bound via the worst-case (empty-pack) current scaling."""
        if current_ma < 0:
            raise BatteryError(f"negative current {current_ma} mA")
        if current_ma == 0.0:
            return self.inner.time_to_death_lower_bound(0.0)
        return self.inner.time_to_death_lower_bound(
            current_ma * self._max_scale()
        )

    def reset(self) -> None:
        self.inner.reset()
        self._reset_delivery()

    @property
    def cell_delivered_mah(self) -> float:
        """Charge the *cell* delivered (exceeds the load-side figure by
        the sag/efficiency overhead)."""
        return self.inner.delivered_mah
