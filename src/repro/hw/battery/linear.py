"""Ideal linear battery: a plain charge bucket.

No rate-capacity effect, no recovery. Included as the ablation
baseline showing that the paper's conclusions *depend* on battery
nonlinearity: with a linear cell, experiment (1A)'s "regained capacity"
disappears and minimizing average current is exactly equivalent to
maximizing lifetime.
"""

from __future__ import annotations

from repro.errors import BatteryError
from repro.hw.battery.base import Battery
from repro.units import mah_to_mas

__all__ = ["LinearBattery"]


class LinearBattery(Battery):
    """Charge bucket: lifetime = remaining_charge / current, always."""

    def __init__(self, capacity_mah: float):
        super().__init__(capacity_mah)
        self._remaining_mas = mah_to_mas(capacity_mah)

    @property
    def remaining_mas(self) -> float:
        """Remaining charge in mA*s."""
        return self._remaining_mas

    def charge_fraction(self) -> float:
        return max(0.0, self._remaining_mas / mah_to_mas(self.capacity_mah))

    def _advance(self, current_ma: float, dt_s: float) -> None:
        self._remaining_mas -= current_ma * dt_s
        if self._remaining_mas < 0.0:
            if self._remaining_mas < -1e-6:
                raise BatteryError("linear battery over-drawn; truncate at time_to_death()")
            self._remaining_mas = 0.0

    def preview(self, current_ma: float, dt_s: float) -> float:
        """Remaining charge after a constant-current step, without
        mutating the cell (no death clamp — may go negative)."""
        if current_ma < 0 or dt_s < 0:
            raise BatteryError("preview needs non-negative current and duration")
        return self._remaining_mas - current_ma * dt_s

    def time_to_death(self, current_ma: float) -> float:
        if current_ma < 0:
            raise BatteryError(f"negative current {current_ma} mA")
        if self._remaining_mas <= 0.0:
            return 0.0
        if current_ma == 0.0:
            return float("inf")
        return self._remaining_mas / current_ma

    def reset(self) -> None:
        self._remaining_mas = mah_to_mas(self.capacity_mah)
        self._reset_delivery()
