"""The host computer: PPP hub, frame source, and result sink.

The paper's host (§4.2) is a PC with one USB/serial adaptor per Itsy,
one PPP network per port, and IP forwarding so the Itsys can talk to
each other "transparently". The host is mains-powered — it has no
battery and its power draw is out of scope.

Because every Itsy is IP-reachable from every other one through the
hub, the topology is a logical *full mesh* over a physical star:
:meth:`HostHub.link` lazily creates the point-to-point link between any
two actors. Node rotation (§5.5) depends on this — after a rotation the
pipeline's first stage lives on a different physical node, which then
talks to the host over its own serial port.

Timing note: although inter-node IP packets physically traverse two
serial hops (node -> host -> node), the paper's measured profile and
timing diagrams (Figs. 3, 6) show inter-node transactions costing a
*single* serial transaction, i.e. the host forwards cut-through at line
rate. ``HostHub`` therefore times inter-node links like host links by
default; pass ``store_and_forward=True`` to double inter-node cost
instead (used by an ablation bench).
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import LinkError
from repro.hw.link import PAPER_LINK_TIMING, SerialLink, TransactionTiming
from repro.sim import Simulator

__all__ = ["HostHub", "HOST_NAME", "store_and_forward_timing"]

#: Reserved actor name for the host computer.
HOST_NAME = "host"


def store_and_forward_timing(timing: TransactionTiming) -> TransactionTiming:
    """Per-hop timing for a store-and-forward inter-node edge.

    Two serial transactions back to back: double startup, half the
    effective bandwidth, double jitter spread.
    """
    return TransactionTiming(
        bandwidth_bps=timing.bandwidth_bps / 2.0,
        startup_s=timing.startup_s * 2.0,
        startup_jitter_s=timing.startup_jitter_s * 2.0,
        corruption_prob=timing.corruption_prob,
    )


class HostHub:
    """Owns the serial-link topology between the host and the nodes.

    Parameters
    ----------
    sim:
        Owning simulator.
    node_names:
        All participating node names (pipeline order is a concern of
        the engine, not the topology).
    timing:
        Per-hop transaction timing.
    store_and_forward:
        If True, inter-node hops pay two serial transactions
        (node->host plus host->node) instead of cut-through forwarding.
    rng:
        RNG stream for startup jitter.
    obs:
        Optional telemetry event bus handed to every lazily created
        link (see :class:`~repro.hw.link.SerialLink`).
    """

    def __init__(
        self,
        sim: Simulator,
        node_names: t.Sequence[str],
        timing: TransactionTiming = PAPER_LINK_TIMING,
        store_and_forward: bool = False,
        rng: np.random.Generator | None = None,
        obs: t.Any = None,
    ):
        if not node_names:
            raise LinkError("at least one node is required")
        if len(set(node_names)) != len(node_names):
            raise LinkError(f"duplicate node names: {list(node_names)}")
        if HOST_NAME in node_names:
            raise LinkError(f"{HOST_NAME!r} is reserved for the host")
        self.sim = sim
        self.node_names = list(node_names)
        self.timing = timing
        self.store_and_forward = store_and_forward
        self.rng = rng
        self.obs = obs if obs else None
        self._links: dict[frozenset[str], SerialLink] = {}

        self._inter_timing = (
            store_and_forward_timing(timing) if store_and_forward else timing
        )

    # -- topology -----------------------------------------------------------
    def link(self, a: str, b: str) -> SerialLink:
        """The (lazily created) link between actors ``a`` and ``b``.

        Either actor may be :data:`HOST_NAME`. The same pair always
        returns the same link object regardless of argument order.
        """
        for name in (a, b):
            if name != HOST_NAME and name not in self.node_names:
                raise LinkError(f"unknown actor {name!r}; have {self.node_names} + host")
        if a == b:
            raise LinkError(f"cannot link {a!r} to itself")
        key = frozenset((a, b))
        if key not in self._links:
            timing = self.timing if HOST_NAME in key else self._inter_timing
            self._links[key] = SerialLink(
                self.sim, a, b, timing, self.rng, obs=self.obs
            )
        return self._links[key]

    def host_link(self, node: str) -> SerialLink:
        """The node's own serial port to the host."""
        return self.link(HOST_NAME, node)

    def all_links(self) -> list[SerialLink]:
        """Every link created so far."""
        return list(self._links.values())

    def total_bytes_moved(self) -> int:
        """Aggregate payload bytes across all links and directions."""
        return sum(
            sum(link.bytes_moved.values()) for link in self._links.values()
        )
