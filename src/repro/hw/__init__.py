"""Hardware substrate: the simulated Itsy pocket computer.

Sub-modules model the pieces of the paper's testbed:

- :mod:`repro.hw.dvs` — the StrongARM SA-1100 frequency/voltage table
  (11 levels, 59–206.4 MHz) and DVS scaling laws.
- :mod:`repro.hw.power` — per-mode battery current curves (Fig. 7).
- :mod:`repro.hw.battery` — battery models: KiBaM (with rate-capacity
  and recovery effects), linear, and Peukert.
- :mod:`repro.hw.link` — the serial/PPP link with transaction startup.
- :mod:`repro.hw.host` — the host hub (PPP ports + IP forwarding).
- :mod:`repro.hw.node` — the node itself: CPU + battery + power-mode
  state machine with death events.
"""

from repro.hw.dvs import SA1100_TABLE, DVSTable, FrequencyLevel
from repro.hw.power import PowerMode, PowerModel
from repro.hw.battery import (
    PAPER_BATTERY,
    Battery,
    BatteryMonitor,
    KiBaM,
    KiBaMParameters,
    LinearBattery,
    PeukertBattery,
    RakhmatovBattery,
    VoltageAwareBattery,
)
from repro.hw.link import SerialLink, TransactionTiming
from repro.hw.host import HostHub
from repro.hw.node import ItsyNode, NodeDead

__all__ = [
    "FrequencyLevel",
    "DVSTable",
    "SA1100_TABLE",
    "PowerMode",
    "PowerModel",
    "Battery",
    "KiBaM",
    "KiBaMParameters",
    "PAPER_BATTERY",
    "LinearBattery",
    "PeukertBattery",
    "RakhmatovBattery",
    "VoltageAwareBattery",
    "BatteryMonitor",
    "SerialLink",
    "TransactionTiming",
    "HostHub",
    "ItsyNode",
    "NodeDead",
]
