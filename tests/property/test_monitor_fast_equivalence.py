"""Monitors must judge coalesced fast-mode streams like exact streams.

Fast mode replaces steady-state windows with ``ff.epoch``/``batch.epoch``
records; :mod:`repro.obs.checks` folds them back into monitor counts.
The contract worth a property test: for *any* (battery size, deadline,
experiment) the paper monitors replayed over the fast event log reach
the same ``(monitor, ok, inconclusive)`` verdicts as over the exact
event-by-event log.
"""

from __future__ import annotations

import dataclasses

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.hw.battery import KiBaM
from repro.obs.checks import paper_monitors, replay

from tests.conftest import TINY_KIBAM


def _verdict_shape(run, spec):
    verdicts = replay(run.obs.events, paper_monitors(spec))
    return [(v.monitor, v.ok, v.inconclusive) for v in verdicts]


@given(
    label=st.sampled_from(["1", "2", "2C"]),
    capacity_mah=st.floats(8.0, 20.0),
    deadline_s=st.floats(2.3, 3.5),
)
@settings(max_examples=5, deadline=None)
def test_fast_and_exact_replays_agree(label, capacity_mah, deadline_s):
    spec = dataclasses.replace(
        PAPER_EXPERIMENTS[label], deadline_s=deadline_s
    )
    params = dataclasses.replace(TINY_KIBAM, capacity_mah=capacity_mah)
    shapes = {}
    for mode in ("exact", "fast"):
        run = run_experiment(
            spec,
            battery_factory=lambda: KiBaM(params),
            telemetry=True,
            monitor_interval_s=120.0,
            mode=mode,
        )
        shapes[mode] = _verdict_shape(run, spec)
    assert shapes["fast"] == shapes["exact"]
