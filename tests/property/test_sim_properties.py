"""Property-based tests on the simulation kernel."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim import Channel, Simulator


class TestClockProperties:
    @given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_time_never_goes_backwards(self, delays):
        sim = Simulator()
        observed = []

        def body(sim, delays):
            for d in delays:
                yield sim.timeout(d)
                observed.append(sim.now)

        sim.process(body(sim, delays))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)

    @given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_final_time_is_sum(self, delays):
        sim = Simulator()

        def body(sim, delays):
            for d in delays:
                yield sim.timeout(d)

        sim.process(body(sim, delays))
        sim.run()
        assert abs(sim.now - sum(delays)) < 1e-6 * max(1.0, sum(delays))

    @given(
        delays=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=20),
        seed_order=st.permutations(list(range(5))),
    )
    @settings(max_examples=50, deadline=None)
    def test_deterministic_replay(self, delays, seed_order):
        def run_once():
            sim = Simulator()
            log = []

            def worker(sim, tag, ds):
                for d in ds:
                    yield sim.timeout(d)
                    log.append((tag, sim.now))

            for tag in seed_order:
                sim.process(worker(sim, tag, delays))
            sim.run()
            return log

        assert run_once() == run_once()


class TestChannelProperties:
    @given(items=st.lists(st.integers(), min_size=0, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_fifo_preserves_sequence(self, items):
        sim = Simulator()
        ch = Channel(sim)
        received = []

        def producer(sim, ch, items):
            for item in items:
                yield ch.put(item)

        def consumer(sim, ch, n):
            for _ in range(n):
                received.append((yield ch.get()))

        sim.process(producer(sim, ch, items))
        sim.process(consumer(sim, ch, len(items)))
        sim.run()
        assert received == items

    @given(
        items=st.lists(st.integers(), min_size=1, max_size=30),
        capacity=st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_channel_never_overflows(self, items, capacity):
        sim = Simulator()
        ch = Channel(sim, capacity=capacity)
        max_seen = []

        def producer(sim, ch, items):
            for item in items:
                yield ch.put(item)
                max_seen.append(len(ch))

        def consumer(sim, ch, n):
            for _ in range(n):
                yield sim.timeout(1.0)
                yield ch.get()

        sim.process(producer(sim, ch, items))
        sim.process(consumer(sim, ch, len(items)))
        sim.run()
        assert all(n <= capacity for n in max_seen)
