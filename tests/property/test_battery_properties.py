"""Property-based tests on battery invariants (hypothesis)."""

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.hw.battery import KiBaM, KiBaMParameters, LinearBattery, PeukertBattery
from repro.units import mah_to_mas


params_strategy = st.builds(
    KiBaMParameters,
    capacity_mah=st.floats(10.0, 5000.0),
    c=st.floats(0.05, 0.95),
    k_prime_per_hour=st.floats(0.05, 20.0),
)

current_strategy = st.floats(0.0, 500.0)
duration_strategy = st.floats(0.0, 3600.0)


class TestKiBaMProperties:
    @given(params=params_strategy, current=current_strategy, dt=duration_strategy)
    @settings(max_examples=150, deadline=None)
    def test_conservation(self, params, current, dt):
        """y1 + y2 == capacity - I*t whenever the draw is legal."""
        cell = KiBaM(params)
        if cell.time_to_death(current) < dt:
            assume(False)
        cell.draw(current, dt)
        expected = mah_to_mas(params.capacity_mah) - current * dt
        total = cell.available_mas + cell.bound_mas
        assert total == pytest.approx(expected, rel=1e-9, abs=1e-6)

    @given(params=params_strategy, current=current_strategy, dt=duration_strategy)
    @settings(max_examples=150, deadline=None)
    def test_wells_never_negative(self, params, current, dt):
        cell = KiBaM(params)
        if cell.time_to_death(current) < dt:
            assume(False)
        cell.draw(current, dt)
        assert cell.available_mas >= 0.0
        assert cell.bound_mas >= -1e-9

    @given(params=params_strategy, current=st.floats(1.0, 500.0))
    @settings(max_examples=100, deadline=None)
    def test_death_prediction_consistent(self, params, current):
        """Stepping exactly to the predicted death leaves y1 ~ 0."""
        cell = KiBaM(params)
        ttd = cell.time_to_death(current)
        assume(ttd < 1e9)
        y1, _ = cell.preview(current, ttd)
        assert abs(y1) < max(1e-6 * mah_to_mas(params.capacity_mah), 1e-3)

    @given(params=params_strategy, current=st.floats(1.0, 500.0))
    @settings(max_examples=100, deadline=None)
    def test_lower_bound_property(self, params, current):
        cell = KiBaM(params)
        lb = cell.time_to_death_lower_bound(current)
        assert lb <= cell.time_to_death(current) * (1 + 1e-9)

    @given(
        params=params_strategy,
        current=st.floats(1.0, 300.0),
        split=st.floats(0.1, 0.9),
    )
    @settings(max_examples=100, deadline=None)
    def test_step_composition(self, params, current, split):
        """Drawing in two legs equals one combined leg (semigroup)."""
        cell_a, cell_b = KiBaM(params), KiBaM(params)
        total_dt = min(600.0, cell_a.time_to_death(current) * 0.5)
        assume(total_dt > 1e-6)
        cell_a.draw(current, total_dt)
        cell_b.draw(current, total_dt * split)
        cell_b.draw(current, total_dt * (1.0 - split))
        assert cell_a.available_mas == pytest.approx(
            cell_b.available_mas, rel=1e-9, abs=1e-6
        )

    @given(params=params_strategy, current=st.floats(1.0, 300.0))
    @settings(max_examples=60, deadline=None)
    def test_rest_monotonically_recovers(self, params, current):
        cell = KiBaM(params)
        dt = min(300.0, cell.time_to_death(current) * 0.5)
        assume(dt > 1e-6)
        cell.draw(current, dt)
        previous = cell.available_mas
        for _ in range(5):
            cell.draw(0.0, 60.0)
            assert cell.available_mas >= previous - 1e-9
            previous = cell.available_mas

    @given(
        params=params_strategy,
        lo=st.floats(1.0, 100.0),
        delta=st.floats(1.0, 200.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_lifetime_monotone_in_current(self, params, lo, delta):
        cell = KiBaM(params)
        assert cell.time_to_death(lo + delta) <= cell.time_to_death(lo)


class TestCrossModelProperties:
    @given(capacity=st.floats(10.0, 1000.0), current=st.floats(1.0, 300.0))
    @settings(max_examples=60, deadline=None)
    def test_linear_is_upper_bound_on_kibam_life(self, capacity, current):
        """An ideal battery always outlasts a KiBaM cell of equal capacity."""
        ideal = LinearBattery(capacity)
        kibam = KiBaM(KiBaMParameters(capacity, 0.3, 1.0))
        assert kibam.time_to_death(current) <= ideal.time_to_death(current) * (
            1 + 1e-9
        )

    @given(
        capacity=st.floats(10.0, 1000.0),
        current=st.floats(1.0, 300.0),
        exponent=st.floats(1.0, 1.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_peukert_above_reference_shortens_life(self, capacity, current, exponent):
        ref = 60.0
        ideal = LinearBattery(capacity)
        peukert = PeukertBattery(capacity, reference_ma=ref, exponent=exponent)
        if current >= ref:
            assert peukert.time_to_death(current) <= ideal.time_to_death(current) * (
                1 + 1e-9
            )
        else:
            assert peukert.time_to_death(current) >= ideal.time_to_death(current) * (
                1 - 1e-9
            )
