"""Property-based tests on partitions and schedules."""

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.apps.atr.profile import BlockProfile, TaskProfile
from repro.errors import InfeasiblePartitionError
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition, enumerate_partitions


profiles = st.builds(
    TaskProfile,
    blocks=st.lists(
        st.builds(
            BlockProfile,
            name=st.sampled_from(["a", "b", "c", "d", "e", "f"]),
            seconds_at_max=st.floats(0.01, 0.6),
            output_bytes=st.integers(0, 20_000),
        ),
        min_size=1,
        max_size=6,
    ).map(tuple),
    input_bytes=st.integers(0, 20_000),
)


class TestPartitionProperties:
    @given(profile=profiles, data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_work_and_payload_conservation(self, profile, data):
        n = data.draw(st.integers(1, len(profile.blocks)))
        for partition in enumerate_partitions(profile, n):
            total = sum(a.proc_seconds_at_max for a in partition.assignments)
            assert total == pytest.approx(profile.total_seconds_at_max)
            # Chain property: consecutive stages agree on the payload.
            for a, b in zip(partition.assignments, partition.assignments[1:]):
                assert a.send_bytes == b.recv_bytes
            # Boundary payloads match the profile ends.
            assert partition.assignments[0].recv_bytes == profile.input_bytes
            assert partition.assignments[-1].send_bytes == profile.output_bytes

    @given(profile=profiles)
    @settings(max_examples=100, deadline=None)
    def test_enumeration_count_is_binomial(self, profile):
        import math

        n_blocks = len(profile.blocks)
        for n in range(1, n_blocks + 1):
            expected = math.comb(n_blocks - 1, n - 1)
            assert len(enumerate_partitions(profile, n)) == expected

    @given(profile=profiles, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_merged_equals_span(self, profile, data):
        n = data.draw(st.integers(1, len(profile.blocks)))
        partition = data.draw(st.sampled_from(enumerate_partitions(profile, n)))
        lo = data.draw(st.integers(0, n - 1))
        hi = data.draw(st.integers(lo + 1, n))
        merged = partition.merged(lo, hi)
        expected_work = sum(
            a.proc_seconds_at_max for a in partition.assignments[lo:hi]
        )
        assert merged.proc_seconds_at_max == pytest.approx(expected_work)
        assert merged.recv_bytes == partition.assignments[lo].recv_bytes
        assert merged.send_bytes == partition.assignments[hi - 1].send_bytes


class TestScheduleProperties:
    @given(profile=profiles, deadline=st.floats(0.5, 10.0), data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_plans_meet_deadline_or_raise(self, profile, deadline, data):
        n = data.draw(st.integers(1, len(profile.blocks)))
        partition = data.draw(st.sampled_from(enumerate_partitions(profile, n)))
        for assignment in partition.assignments:
            try:
                plan = plan_node(
                    assignment, PAPER_LINK_TIMING, deadline, SA1100_TABLE
                )
            except InfeasiblePartitionError:
                continue
            assert plan.schedule.busy_s <= deadline + 1e-9
            assert plan.level in SA1100_TABLE.levels

    @given(profile=profiles, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_chosen_level_is_slowest_feasible(self, profile, data):
        """One DVS step down must break the deadline (minimality)."""
        deadline = data.draw(st.floats(1.0, 8.0))
        assignment = Partition(profile).stage(0)
        try:
            plan = plan_node(assignment, PAPER_LINK_TIMING, deadline, SA1100_TABLE)
        except InfeasiblePartitionError:
            assume(False)
        if plan.level is SA1100_TABLE.min:
            return
        lower = SA1100_TABLE.step_down(plan.level)
        slower_proc = SA1100_TABLE.scale_time(assignment.proc_seconds_at_max, lower)
        busy = plan.schedule.comm_s + slower_proc
        assert busy > deadline - 1e-9
