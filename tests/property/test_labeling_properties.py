"""Property-based tests on the ATR connected-component labeling."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays

from repro.apps.atr.blocks import label_components, label_components_reference


masks = arrays(
    dtype=bool,
    shape=st.tuples(st.integers(1, 16), st.integers(1, 16)),
)


class TestLabelingProperties:
    @given(mask=masks)
    @settings(max_examples=200, deadline=None)
    def test_matches_scipy(self, mask):
        from scipy import ndimage

        ours_labels, ours_n = label_components(mask)
        theirs_labels, theirs_n = ndimage.label(mask)
        assert ours_n == theirs_n
        # Same partition up to label permutation: pixels share our label
        # iff they share scipy's label.
        assert (ours_labels > 0).sum() == (theirs_labels > 0).sum()
        if ours_n:
            mapping = {}
            for ours, theirs in zip(ours_labels.flat, theirs_labels.flat):
                if ours == 0:
                    assert theirs == 0
                    continue
                assert mapping.setdefault(ours, theirs) == theirs

    @given(mask=masks)
    @settings(max_examples=100, deadline=None)
    def test_background_unlabeled_foreground_labeled(self, mask):
        labels, n = label_components(mask)
        assert ((labels > 0) == mask).all()
        if mask.any():
            assert n >= 1
            assert set(np.unique(labels[mask])) == set(range(1, n + 1))

    @given(mask=masks)
    @settings(max_examples=50, deadline=None)
    def test_idempotent_under_transpose(self, mask):
        """4-connectivity is symmetric: component count is transpose-invariant."""
        _, n_a = label_components(mask)
        _, n_b = label_components(mask.T)
        assert n_a == n_b

    @given(mask=masks)
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_implementation(self, mask):
        """The run-length fast path reproduces the retained per-pixel oracle.

        Both number components in raster order of their first pixel, so
        agreement is exact — stronger than the label-permutation
        invariance the contract requires.
        """
        fast_labels, fast_n = label_components(mask)
        ref_labels, ref_n = label_components_reference(mask)
        assert fast_n == ref_n
        assert np.array_equal(fast_labels, ref_labels)

    @given(mask=masks)
    @settings(max_examples=100, deadline=None)
    def test_partition_matches_reference(self, mask):
        """Permutation-invariant check: same pixels grouped together."""
        fast_labels, _ = label_components(mask)
        ref_labels, _ = label_components_reference(mask)
        mapping = {}
        for fast, ref in zip(fast_labels.flat, ref_labels.flat):
            if fast == 0:
                assert ref == 0
                continue
            assert mapping.setdefault(fast, ref) == ref
