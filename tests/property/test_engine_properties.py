"""Property-based tests on the pipeline engine.

Random (feasible) task profiles and partitions must all satisfy the
paper's structural contract: the pipeline delivers every requested
frame, exactly one per frame delay, with per-node schedules that never
exceed D.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.apps.atr.profile import BlockProfile, TaskProfile
from repro.core.policies import DVSDuringIOPolicy, SlowestFeasiblePolicy
from repro.errors import InfeasiblePartitionError
from repro.hw.battery import LinearBattery
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.pipeline.engine import PipelineConfig, PipelineEngine
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import enumerate_partitions


profiles = st.builds(
    TaskProfile,
    blocks=st.lists(
        st.builds(
            BlockProfile,
            name=st.sampled_from(["a", "b", "c", "d"]),
            seconds_at_max=st.floats(0.05, 0.5),
            output_bytes=st.integers(50, 8000),
        ),
        min_size=2,
        max_size=4,
    ).map(tuple),
    input_bytes=st.integers(500, 12_000),
)


@given(profile=profiles, deadline=st.floats(2.0, 6.0), data=st.data())
@settings(max_examples=30, deadline=None)
def test_every_feasible_partition_holds_the_throughput_contract(
    profile, deadline, data
):
    n = data.draw(st.integers(1, len(profile.blocks)), label="stages")
    partition = data.draw(
        st.sampled_from(enumerate_partitions(profile, n)), label="partition"
    )
    try:
        plans = [
            plan_node(a, PAPER_LINK_TIMING, deadline, SA1100_TABLE)
            for a in partition.assignments
        ]
    except InfeasiblePartitionError:
        assume(False)
        return
    roles = DVSDuringIOPolicy(SlowestFeasiblePolicy()).role_configs(
        plans, SA1100_TABLE
    )
    config = PipelineConfig(
        partition=partition,
        roles=roles,
        node_names=tuple(f"n{i}" for i in range(n)),
        battery_factory=lambda: LinearBattery(10_000.0),  # effectively infinite
        deadline_s=deadline,
        max_frames=6,
        monitor_interval_s=None,
    )
    result = PipelineEngine(config).run()

    # Contract 1: all requested frames delivered.
    assert result.frames_completed == 6
    # Contract 2: one result per frame delay, exactly, once flowing.
    assert result.mean_result_period_s() == pytest.approx(deadline, rel=1e-6)
    assert result.late_results == 0
    # Contract 3: the first result needs at least one frame of latency
    # per stage's busy time and at most the paper's N*D bound.
    assert result.result_times_s[0] <= n * deadline + 1e-9
    # Contract 4: nobody died on a 10 Ah cell in 6 frames.
    assert result.death_times_s == {}
