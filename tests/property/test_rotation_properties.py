"""Property-based tests on the rotation schedule arithmetic."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.pipeline.rotation import RotationController


depth = st.integers(2, 6)


@st.composite
def controllers(draw):
    n = draw(depth)
    period = draw(st.integers(n, 60))
    return RotationController(period=period, n_stages=n)


class TestRotationProperties:
    @given(ctl=controllers(), frame=st.integers(0, 10_000))
    @settings(max_examples=200, deadline=None)
    def test_roles_form_a_permutation(self, ctl, frame):
        roles = [ctl.role_of_node(i, frame) for i in range(ctl.n_stages)]
        assert sorted(roles) == list(range(ctl.n_stages))

    @given(ctl=controllers(), frame=st.integers(0, 10_000))
    @settings(max_examples=200, deadline=None)
    def test_role0_holder_inverse_of_role_of_node(self, ctl, frame):
        holder = ctl.role0_holder_index(frame)
        assert ctl.role_of_node(holder, frame) == 0

    @given(ctl=controllers())
    @settings(max_examples=100, deadline=None)
    def test_full_cycle_after_n_epochs(self, ctl):
        first = ctl.role0_holder_index(0)
        after_cycle = ctl.role0_holder_index(ctl.period * ctl.n_stages)
        assert first == after_cycle == 0

    @given(ctl=controllers(), epoch=st.integers(0, 50))
    @settings(max_examples=100, deadline=None)
    def test_last_node_rotates_to_front(self, ctl, epoch):
        """§5.5's rule: the role-0 holder walks backwards through the
        physical node list, one step per rotation."""
        before = ctl.role0_holder_index(epoch * ctl.period)
        after = ctl.role0_holder_index((epoch + 1) * ctl.period)
        assert after == (before - 1) % ctl.n_stages

    @given(ctl=controllers(), role=st.integers(0, 5), k=st.integers(1, 20))
    @settings(max_examples=200, deadline=None)
    def test_rotation_frames_are_periodic(self, ctl, role, k):
        role = role % ctl.n_stages
        f = k * ctl.period - 1 - role
        if f >= 0:
            assert ctl.is_rotation_frame(f, role)
        # And the frames in between are not rotation frames.
        for offset in range(1, min(ctl.period - 1, 4)):
            g = f + offset
            if g >= 0 and offset != 0:
                assert not ctl.is_rotation_frame(g, role) or offset % ctl.period == 0

    @given(ctl=controllers(), window=st.integers(0, 40))
    @settings(max_examples=100, deadline=None)
    def test_exactly_one_rotation_frame_per_role_per_period(self, ctl, window):
        start = window * ctl.period
        for role in range(ctl.n_stages):
            hits = [
                f
                for f in range(start, start + ctl.period)
                if ctl.is_rotation_frame(f, role)
            ]
            assert len(hits) == 1
