"""Self-containment validator for ``repro report`` HTML output.

Run as a script (CI does) or import :func:`validate_html`. The checks
are deliberately textual — the contract is *zero external assets*, so
the validator hunts for anything that would make a browser issue a
network request: ``<script>``/``<link>`` tags, ``src=``/``href=``
attributes pointing at URLs, CSS ``@import``/``url(...)``. The SVG
namespace declaration (``xmlns="http://www.w3.org/2000/svg"``) is an
identifier, not a fetch, and is allowed.

Usage::

    python tests/obs/html_schema.py report.html
"""

from __future__ import annotations

import re
import sys

#: Patterns whose presence means the document is NOT self-contained.
_FORBIDDEN = (
    ("script tag", re.compile(r"<script\b", re.IGNORECASE)),
    ("stylesheet link", re.compile(r"<link\b", re.IGNORECASE)),
    ("iframe", re.compile(r"<iframe\b", re.IGNORECASE)),
    ("src attribute", re.compile(r"\bsrc\s*=", re.IGNORECASE)),
    ("href URL", re.compile(r"\bhref\s*=\s*[\"']?https?:", re.IGNORECASE)),
    ("css import", re.compile(r"@import\b", re.IGNORECASE)),
    ("css url()", re.compile(r"\burl\s*\(", re.IGNORECASE)),
)

#: URL-shaped strings that are identifiers rather than fetch targets.
_ALLOWED_URLS = frozenset({"http://www.w3.org/2000/svg"})

_URL = re.compile(r"https?://[^\s\"'<>)]+")

#: Structural requirements of a report document.
_REQUIRED = (
    ("doctype", re.compile(r"\A<!DOCTYPE html>", re.IGNORECASE)),
    ("utf-8 charset", re.compile(r"<meta charset=\"utf-8\"", re.IGNORECASE)),
    ("inline svg", re.compile(r"<svg\b", re.IGNORECASE)),
    ("closing html tag", re.compile(r"</html>\s*\Z")),
)


def validate_html(text: str) -> list[str]:
    """Return a list of problems; empty means the document passes."""
    problems = []
    for name, pattern in _REQUIRED:
        if not pattern.search(text):
            problems.append(f"missing {name}")
    for name, pattern in _FORBIDDEN:
        match = pattern.search(text)
        if match:
            start = max(0, match.start() - 30)
            context = text[start:match.end() + 50].replace("\n", " ")
            problems.append(f"forbidden {name}: ...{context}...")
    for url in set(_URL.findall(text)):
        if url not in _ALLOWED_URLS:
            problems.append(f"external URL: {url}")
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: html_schema.py REPORT.html", file=sys.stderr)
        return 2
    with open(argv[0], encoding="utf-8") as fh:
        text = fh.read()
    problems = validate_html(text)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if problems:
        return 1
    svg_count = len(re.findall(r"<svg\b", text))
    print(
        f"ok: {argv[0]} is self-contained "
        f"({len(text)} bytes, {svg_count} inline SVG charts)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
