"""Causal frame tracing: span trees, critical paths, Fig. 6 agreement."""

from __future__ import annotations

import json

import pytest

from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.errors import ReproError
from repro.obs.causal import (
    CATEGORIES,
    build_frame_trace,
    collapsed_stacks,
    explain_frame,
    frame_ids,
    late_frame_ids,
    render_frame_tree,
)

from tests.conftest import tiny_battery_factory

#: Fig. 6 comparisons share the figure benchmark's absolute tolerance.
FIG6_ABS_TOL = 0.02


@pytest.fixture(scope="module")
def exp2_run():
    """Eight exactly-simulated frames of the two-node pipeline."""
    return run_experiment(
        PAPER_EXPERIMENTS["2"],
        battery_factory=tiny_battery_factory,
        telemetry=True,
        max_frames=8,
    )


class TestFrameTrace:
    def test_frame_ids_cover_the_bounded_run(self, exp2_run):
        ids = frame_ids(exp2_run.obs.events)
        assert ids[0] == 0 and set(range(8)) <= set(ids)
        assert late_frame_ids(exp2_run.obs.events) == []

    def test_critical_path_is_contiguous_and_sums_to_latency(self, exp2_run):
        trace = build_frame_trace(exp2_run.obs.events, 3)
        path = trace.critical_path
        assert path[0].t0 == pytest.approx(trace.emitted_s, abs=1e-9)
        assert path[-1].t1 == pytest.approx(trace.completed_s, abs=1e-9)
        for prev, cur in zip(path, path[1:]):
            assert cur.t0 == pytest.approx(prev.t1, abs=1e-9)
        assert all(s.category in CATEGORIES for s in path)
        total = sum(s.duration_s for s in path)
        assert total == pytest.approx(trace.latency_s, abs=1e-9)
        assert sum(trace.breakdown().values()) == pytest.approx(
            trace.latency_s, abs=1e-9
        )

    def test_spans_name_blocks_and_hops(self, exp2_run):
        trace = build_frame_trace(exp2_run.obs.events, 3)
        blocks = trace.compute_blocks()
        # Experiment 2 cuts after target_detection: node1 runs detection,
        # node2 the rest.
        assert set(blocks) == {
            "target_detection", "fft", "ifft", "compute_distance",
        }
        hops = trace.transfers()
        assert set(hops) == {"host->node1", "node1->node2", "node2->host"}
        # Each hop carries the 90 ms PPP startup in its total.
        assert all(v >= 0.09 for v in hops.values())

    def test_explain_frame_is_json_stable(self, exp2_run):
        explanation = explain_frame(exp2_run.obs.events, 2)
        clone = json.loads(json.dumps(explanation))
        assert clone["frame"] == 2
        assert set(clone["breakdown_s"]) == set(CATEGORIES)
        assert clone["critical_path"]

    def test_collapsed_stacks_format(self, exp2_run):
        traces = [
            build_frame_trace(exp2_run.obs.events, i) for i in range(3)
        ]
        lines = collapsed_stacks(traces)
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert stack.startswith("frame")
            assert stack.count(";") == 3  # frame;actor;category;name

    def test_render_tree_mentions_frame_and_breakdown(self, exp2_run):
        text = render_frame_tree(build_frame_trace(exp2_run.obs.events, 3))
        assert "frame 3" in text
        assert "breakdown:" in text
        assert "compute" in text

    def test_unknown_frame_raises_with_hint(self, exp2_run):
        with pytest.raises(ReproError, match="traceable ids"):
            build_frame_trace(exp2_run.obs.events, 10_000)


class TestFig6Breakdown:
    """``repro explain frame`` reproduces Fig. 6's 1A breakdown."""

    @pytest.fixture(scope="class")
    def trace_1a(self):
        run = run_experiment(
            PAPER_EXPERIMENTS["1A"],
            battery_factory=tiny_battery_factory,
            telemetry=True,
            max_frames=6,
        )
        # A steady-state frame (not the pipeline-fill first frame).
        return build_frame_trace(run.obs.events, 3)

    def test_per_block_compute_matches_profile(self, trace_1a):
        profile = PAPER_EXPERIMENTS["1A"].profile
        blocks = trace_1a.compute_blocks()
        for block in profile.blocks:
            # 1A runs PROC at full speed (DVS only during I/O), so each
            # block's traced duration is its Fig. 6 time at 206.4 MHz.
            assert blocks[block.name] == pytest.approx(
                block.seconds_at_max, abs=FIG6_ABS_TOL
            ), block.name

    def test_input_transfer_matches_fig6(self, trace_1a):
        hops = trace_1a.transfers()
        # Fig. 6: the 10.1 KB input frame takes ~1.1 s host -> node.
        assert hops["host->node1"] == pytest.approx(1.1, abs=FIG6_ABS_TOL)

    def test_total_proc_matches_fig6(self, trace_1a):
        profile = PAPER_EXPERIMENTS["1A"].profile
        assert sum(trace_1a.compute_blocks().values()) == pytest.approx(
            profile.total_seconds_at_max, abs=FIG6_ABS_TOL
        )


def test_fast_forwarded_frames_are_not_traceable():
    """Coalesced frames raise with an actionable message."""
    run = run_experiment(
        PAPER_EXPERIMENTS["1"],
        battery_factory=tiny_battery_factory,
        telemetry=True,
        mode="fast",
    )
    ids = frame_ids(run.obs.events)
    missing = next(
        (i for i in range(run.frames) if i not in set(ids)), None
    )
    if missing is None:
        pytest.skip("run too short for fast-forward to coalesce any epoch")
    with pytest.raises(ReproError, match="fast-forward"):
        build_frame_trace(run.obs.events, missing)
