"""Invariant monitors: each check passes on a clean synthetic stream
and fails on the same stream minimally perturbed.

Every monitor gets a pair of tests built from hand-written event
streams — a deadline miss, a battery charge uptick, a late recovery
ack, a saturated link, a lost discharge balance — so a verdict flip
can be attributed to exactly one perturbed event. The end-to-end
pass-on-real-runs behaviour is covered by the CLI `check` tests.
"""

from __future__ import annotations

import pytest

from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.obs import EventLog, Telemetry
from repro.obs.checks import (
    PAPER_ORDERING,
    ChargeMonotonicMonitor,
    FrameDeadlineMonitor,
    InvariantMonitor,
    LinkBusyFractionMonitor,
    RecoveryLatencyMonitor,
    RotationBalanceMonitor,
    check_paper_ordering,
    paper_monitors,
    replay,
)

from tests.conftest import tiny_battery_factory


def _log(events):
    """Build an EventLog from (kind, ts, actor, data) tuples."""
    log = EventLog()
    for kind, ts, actor, data in events:
        log.emit(kind, ts, actor, **data)
    return log


def _verdict(monitor, events):
    [verdict] = replay(_log(events), [monitor])
    return verdict


# ---------------------------------------------------------------------------
# frame deadline
# ---------------------------------------------------------------------------

_FRAMES_OK = [
    ("frame.result", 4.6, "host", {"frame": 0, "latency_s": 4.2, "late": False}),
    ("frame.result", 6.9, "host", {"frame": 1, "latency_s": 4.4, "late": False}),
    ("frame.result", 9.2, "host", {"frame": 2, "latency_s": 4.1, "late": False}),
]


class TestFrameDeadlineMonitor:
    def test_passes_within_contract(self):
        verdict = _verdict(FrameDeadlineMonitor(2.3, n_stages=2), _FRAMES_OK)
        assert verdict.ok
        assert verdict.events_seen == 3
        assert verdict.violating_event is None

    def test_fails_on_single_late_frame(self):
        events = list(_FRAMES_OK)
        # Perturb one frame past the 2 * 2.3 s contract.
        events[1] = (
            "frame.result", 11.9, "host",
            {"frame": 1, "latency_s": 9.4, "late": True},
        )
        verdict = _verdict(FrameDeadlineMonitor(2.3, n_stages=2), events)
        assert not verdict.ok
        assert verdict.violations == 1
        assert verdict.violating_event.data["frame"] == 1
        assert "9.400s" in verdict.detail

    def test_grace_widens_the_bound(self):
        events = [
            ("frame.result", 11.9, "host",
             {"frame": 1, "latency_s": 9.4, "late": True}),
        ]
        strict = _verdict(FrameDeadlineMonitor(2.3, n_stages=2), events)
        graced = _verdict(
            FrameDeadlineMonitor(2.3, n_stages=2, grace_s=6.9), list(events)
        )
        assert not strict.ok
        assert graced.ok

    def test_ignores_other_event_kinds(self):
        verdict = _verdict(
            FrameDeadlineMonitor(2.3),
            [("battery.draw", 1.0, "node1", {"charge_fraction": 0.5})],
        )
        assert verdict.ok
        assert verdict.events_seen == 0


# ---------------------------------------------------------------------------
# charge monotonicity
# ---------------------------------------------------------------------------

_CHARGE_OK = [
    ("battery.draw", 60.0, "node1", {"charge_fraction": 0.99, "current_ma": 40.0, "mode": "computation"}),
    ("battery.draw", 60.0, "node2", {"charge_fraction": 0.98, "current_ma": 42.0, "mode": "computation"}),
    ("battery.draw", 120.0, "node1", {"charge_fraction": 0.97, "current_ma": 40.0, "mode": "idle"}),
    ("battery.draw", 120.0, "node2", {"charge_fraction": 0.96, "current_ma": 41.0, "mode": "idle"}),
    ("battery.draw", 180.0, "node1", {"charge_fraction": 0.95, "current_ma": 40.0, "mode": "communication"}),
]


class TestChargeMonotonicMonitor:
    def test_passes_on_discharge(self):
        verdict = _verdict(ChargeMonotonicMonitor(), _CHARGE_OK)
        assert verdict.ok
        assert "2 nodes" in verdict.detail

    def test_fails_on_charge_uptick(self):
        events = list(_CHARGE_OK)
        # node1's third sample rises above its second: a model leak.
        events[4] = (
            "battery.draw", 180.0, "node1",
            {"charge_fraction": 0.975, "current_ma": 40.0, "mode": "idle"},
        )
        verdict = _verdict(ChargeMonotonicMonitor(), events)
        assert not verdict.ok
        assert verdict.violating_event.ts == 180.0
        assert "node1" in verdict.detail

    def test_per_node_tracking_no_cross_node_false_positive(self):
        # node2 (0.98) reporting after node1 (0.97) is NOT an uptick.
        events = [
            ("battery.draw", 60.0, "node1", {"charge_fraction": 0.97}),
            ("battery.draw", 61.0, "node2", {"charge_fraction": 0.98}),
        ]
        assert _verdict(ChargeMonotonicMonitor(), events).ok

    def test_tolerance_absorbs_float_noise(self):
        events = [
            ("battery.draw", 60.0, "node1", {"charge_fraction": 0.97}),
            ("battery.draw", 61.0, "node1", {"charge_fraction": 0.97 + 1e-12}),
        ]
        assert _verdict(ChargeMonotonicMonitor(), events).ok


# ---------------------------------------------------------------------------
# link busy fraction
# ---------------------------------------------------------------------------

def _xfers(duration_s, n=20, spacing_s=2.3):
    return [
        ("link.xfer", (i + 1) * spacing_s, "node1",
         {"to": "node2", "bytes": 20000, "duration_s": duration_s})
        for i in range(n)
    ]


class TestLinkBusyFractionMonitor:
    def test_passes_at_moderate_utilisation(self):
        verdict = _verdict(LinkBusyFractionMonitor(), _xfers(duration_s=1.0))
        assert verdict.ok
        assert "peak busy fraction" in verdict.detail

    def test_fails_past_the_budget(self):
        # Transfers longer than their spacing: >100% busy, impossible
        # on a half-duplex serial link — must be flagged.
        verdict = _verdict(LinkBusyFractionMonitor(), _xfers(duration_s=2.6))
        assert not verdict.ok
        assert "node1" in verdict.detail

    def test_short_streams_are_vacuous(self):
        # Below the warmup span a single fat transfer proves nothing.
        verdict = _verdict(
            LinkBusyFractionMonitor(warmup_s=10.0),
            [("link.xfer", 2.0, "node1",
              {"to": "node2", "bytes": 100, "duration_s": 1.9})],
        )
        assert verdict.ok


# ---------------------------------------------------------------------------
# fast-forward epochs (mode="fast" coalesced records)
# ---------------------------------------------------------------------------

def _epoch(ts, frames, link_busy_s, t0=None):
    return (
        "ff.epoch", ts, "host",
        {
            "frames": frames, "periods": frames, "period_s": 2.3,
            "t0": ts - frames * 2.3 if t0 is None else t0, "t1": ts,
            "late": 0, "drained_mah": {}, "link_busy_s": link_busy_s,
        },
    )


class TestMonitorsAcceptEpochs:
    """ff.epoch events fold into the monitors instead of blinding them."""

    def test_deadline_monitor_counts_skipped_frames(self):
        monitor = FrameDeadlineMonitor(2.3, n_stages=2)
        verdict = _verdict(monitor, _FRAMES_OK + [_epoch(239.2, 100, {})])
        assert verdict.ok
        assert monitor.frames == len(_FRAMES_OK) + 100
        assert "103 frames" in verdict.detail

    def test_deadline_monitor_never_flags_an_epoch(self):
        # An epoch spans far longer than any per-frame bound; it must
        # contribute to coverage, not be mistaken for a late frame.
        verdict = _verdict(FrameDeadlineMonitor(2.3), [_epoch(230.0, 100, {})])
        assert verdict.ok

    def test_link_busy_merges_epoch_busy_time(self):
        # 20 exact transfers at 1.0 s / 2.3 s spacing, then an epoch
        # whose coalesced busy time keeps the same moderate fraction.
        stream = _xfers(duration_s=1.0) + [_epoch(276.0, 100, {"node1": 100.0})]
        verdict = _verdict(LinkBusyFractionMonitor(), stream)
        assert verdict.ok

    def test_link_busy_epoch_saturation_still_fails(self):
        # The epoch claims more busy seconds than its span: the merged
        # fraction crosses 1.0 and the monitor must still flag it.
        stream = _xfers(duration_s=1.0) + [_epoch(276.0, 100, {"node1": 260.0})]
        verdict = _verdict(LinkBusyFractionMonitor(), stream)
        assert not verdict.ok
        assert "node1" in verdict.detail

    def test_epoch_only_stream_uses_t0_for_the_span(self):
        verdict = _verdict(
            LinkBusyFractionMonitor(),
            [_epoch(230.0, 100, {"node1": 100.0}, t0=0.0)],
        )
        assert verdict.ok


# ---------------------------------------------------------------------------
# rotation discharge balance
# ---------------------------------------------------------------------------

def _balanced(spread):
    events = []
    for i in range(1, 5):
        t = 60.0 * i
        base = 1.0 - 0.05 * i
        events.append(("battery.draw", t, "node1", {"charge_fraction": base}))
        events.append(
            ("battery.draw", t, "node2", {"charge_fraction": base - spread})
        )
    return events


class TestRotationBalanceMonitor:
    def test_passes_when_balanced(self):
        verdict = _verdict(
            RotationBalanceMonitor(tolerance=0.12, n_nodes=2), _balanced(0.02)
        )
        assert verdict.ok
        assert "spread" in verdict.detail

    def test_fails_when_one_node_runs_ahead(self):
        verdict = _verdict(
            RotationBalanceMonitor(tolerance=0.12, n_nodes=2), _balanced(0.3)
        )
        assert not verdict.ok
        assert verdict.violating_event.kind == "battery.draw"

    def test_waits_for_every_node_before_judging(self):
        # Only node1 ever reports: no spread to evaluate, vacuous pass.
        events = [
            ("battery.draw", 60.0, "node1", {"charge_fraction": 0.9}),
            ("battery.draw", 120.0, "node1", {"charge_fraction": 0.2}),
        ]
        verdict = _verdict(RotationBalanceMonitor(n_nodes=2), events)
        assert verdict.ok
        assert "fewer than two nodes" in verdict.detail


# ---------------------------------------------------------------------------
# recovery detection latency
# ---------------------------------------------------------------------------

_RECOVERY_OK = [
    ("battery.dead", 1000.0, "node1", {"delivered_mah": 95.2}),
    ("recovery.migrate", 1006.9, "node2",
     {"survivor": "node2", "detect_timeout_s": 6.9}),
]


class TestRecoveryLatencyMonitor:
    def test_passes_within_the_ack_timeout(self):
        verdict = _verdict(RecoveryLatencyMonitor(6.9, slack_s=2.3), _RECOVERY_OK)
        assert verdict.ok
        assert "1 migrations" in verdict.detail

    def test_fails_on_late_detection(self):
        events = [
            _RECOVERY_OK[0],
            # Ack silence noticed three deadlines too late.
            ("recovery.migrate", 1016.2, "node2",
             {"survivor": "node2", "detect_timeout_s": 6.9}),
        ]
        verdict = _verdict(RecoveryLatencyMonitor(6.9, slack_s=2.3), events)
        assert not verdict.ok
        assert "detection latency" in verdict.detail
        assert verdict.violating_event.kind == "recovery.migrate"

    def test_fails_on_migration_without_death(self):
        verdict = _verdict(
            RecoveryLatencyMonitor(6.9), [_RECOVERY_OK[1]]
        )
        assert not verdict.ok
        assert "no preceding" in verdict.detail

    def test_no_migrations_is_a_vacuous_pass(self):
        verdict = _verdict(RecoveryLatencyMonitor(6.9), [_RECOVERY_OK[0]])
        assert verdict.ok
        assert "no migrations" in verdict.detail


# ---------------------------------------------------------------------------
# streaming vs replay, tap plumbing, verdict shape
# ---------------------------------------------------------------------------

class TestStreamingEquivalence:
    def test_attached_monitors_match_replay(self):
        """A live tap and an offline replay produce identical verdicts."""
        spec = PAPER_EXPERIMENTS["2B"]
        obs = Telemetry()
        live = paper_monitors(spec)
        for monitor in live:
            obs.events.attach(monitor)
        run = run_experiment(
            spec,
            battery_factory=tiny_battery_factory,
            telemetry=obs,
            monitor_interval_s=60.0,
        )
        streamed = [m.verdict().as_dict() for m in live]
        replayed = [
            v.as_dict() for v in replay(run.obs.events, paper_monitors(spec))
        ]
        assert streamed == replayed

    def test_taps_see_events_dropped_by_the_storage_cap(self):
        log = EventLog(max_events=2)
        monitor = ChargeMonotonicMonitor()
        log.attach(monitor)
        for i in range(5):
            log.emit(
                "battery.draw", 60.0 * (i + 1), "node1",
                charge_fraction=1.0 - 0.1 * i,
            )
        assert len(log) == 2 and log.dropped == 3
        assert monitor.events_seen == 5

    def test_attach_rejects_non_monitors(self):
        with pytest.raises(TypeError, match="observe"):
            EventLog().attach(object())

    def test_detach_stops_the_stream(self):
        log = EventLog()
        monitor = ChargeMonotonicMonitor()
        log.attach(monitor)
        log.emit("battery.draw", 60.0, "node1", charge_fraction=0.9)
        log.detach(monitor)
        log.emit("battery.draw", 120.0, "node1", charge_fraction=0.8)
        assert monitor.events_seen == 1
        log.detach(monitor)  # double-detach is harmless

    def test_base_class_requires_observe_implementation(self):
        class Incomplete(InvariantMonitor):
            pass

        with pytest.raises(NotImplementedError):
            Incomplete().observe(
                _log([("x", 0.0, "", {})]).records[0]
            )


class TestPaperMonitors:
    def test_selected_per_spec(self):
        names = lambda spec: {m.name for m in paper_monitors(spec)}
        assert names(PAPER_EXPERIMENTS["2"]) == {
            "charge-monotonic", "frame-deadline", "link-busy-fraction",
        }
        assert "recovery-latency" in names(PAPER_EXPERIMENTS["2B"])
        assert "rotation-balance" in names(PAPER_EXPERIMENTS["2C"])
        # No-I/O runs have no pipeline, links, or deadline contract.
        assert names(PAPER_EXPERIMENTS["0A"]) == {"charge-monotonic"}

    def test_recovery_spec_gets_deadline_grace(self):
        monitors = {m.name: m for m in paper_monitors(PAPER_EXPERIMENTS["2B"])}
        spec = PAPER_EXPERIMENTS["2B"]
        strict = spec.n_nodes * spec.deadline_s
        assert monitors["frame-deadline"].bound_s > strict + spec.recovery_detect_timeout_s - 1e-9


class TestPaperOrdering:
    _GOOD = {"2C": 9.79, "2B": 8.22, "2A": 7.26, "2": 7.13}

    def test_correct_ordering_passes(self):
        verdicts = check_paper_ordering(self._GOOD)
        assert len(verdicts) == len(PAPER_ORDERING) - 1
        assert all(v.ok for v in verdicts)

    def test_inverted_pair_fails_that_pair_only(self):
        tnorms = dict(self._GOOD, **{"2B": 7.0})  # drops below 2A
        verdicts = {v.monitor: v for v in check_paper_ordering(tnorms)}
        assert verdicts["paper-ordering:2C>2B"].ok
        assert not verdicts["paper-ordering:2B>2A"].ok

    def test_missing_label_is_reported(self):
        tnorms = {k: v for k, v in self._GOOD.items() if k != "2A"}
        verdicts = check_paper_ordering(tnorms)
        assert len(verdicts) == 1
        assert not verdicts[0].ok
        assert "2A" in verdicts[0].detail
