"""Null-sink overhead: disabled telemetry must be near-free.

The acceptance bar is <5% wall-time overhead on a short Fig. 10
experiment. Timing comparisons on shared CI machines are noisy, so the
test takes best-of-N for both variants (best-of is robust against
one-sided scheduling noise) and asserts against a slightly looser bound
than the headline number to keep the test deterministic in practice.
"""

from __future__ import annotations

import time

from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.obs import Telemetry

from tests.conftest import tiny_battery_factory

_FRAMES = 40
_REPEATS = 3


def _best_of(fn, repeats=_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_null_sink_overhead_under_5_percent():
    spec = PAPER_EXPERIMENTS["2A"]

    def plain():
        run_experiment(
            spec, battery_factory=tiny_battery_factory, max_frames=_FRAMES
        )

    def null_sink():
        # Telemetry wired through every emitter, but the event bus is a
        # null sink: each emit site costs one falsy branch.
        run_experiment(
            spec,
            battery_factory=tiny_battery_factory,
            max_frames=_FRAMES,
            telemetry=Telemetry(events=False),
        )

    _best_of(plain, 1)  # warm imports and code paths
    base = _best_of(plain)
    instrumented = _best_of(null_sink)
    # <5% is the acceptance target on quiet machines; allow scheduling
    # noise up to 15% before calling it a regression (the bus itself
    # adds only branch checks, far below either bound).
    assert instrumented <= base * 1.15, (
        f"null-sink telemetry cost {instrumented / base - 1:.1%} "
        f"(baseline {base * 1e3:.1f} ms, instrumented {instrumented * 1e3:.1f} ms)"
    )


def test_null_sink_produces_no_events_but_live_metrics():
    obs = Telemetry(events=False)
    run_experiment(
        PAPER_EXPERIMENTS["2A"],
        battery_factory=tiny_battery_factory,
        max_frames=5,
        telemetry=obs,
    )
    assert len(obs.events) == 0
    assert obs.metrics.counter("frames.completed").value == 5
