"""Perf-regression gate: direction inference, diffing, rendering."""

import json

import pytest

from repro.obs.benchdiff import (
    baseline_from_history,
    bench_diff,
    load_bench,
    metric_direction,
    metric_scale,
    render_diff,
    scalar_sections,
)


def test_metric_direction_conventions():
    assert metric_direction("events_per_s") == "higher"
    assert metric_direction("configs_per_sec") == "higher"
    assert metric_direction("speedup_vs_serial") == "higher"
    assert metric_direction("wall_s") == "lower"
    assert metric_direction("null_sink_overhead_pct") == "lower"
    assert metric_direction("report_bytes") == "lower"
    assert metric_direction("max_lifetime_rel_err") == "lower"
    # Throughput suffix wins over the generic trailing ``_s``.
    assert metric_direction("frames_per_s") == "higher"
    # Sizes and counts have no direction and never gate.
    assert metric_direction("frames") is None
    assert metric_direction("configs") is None


def test_metric_scale_percentage_metrics_diff_absolutely():
    assert metric_scale("null_sink_overhead_pct") == "absolute"
    assert metric_scale("max_conservation_rel_err") == "absolute"
    assert metric_scale("events_per_s") == "relative"
    assert metric_scale("wall_s") == "relative"
    # An overhead hopping -0.7% -> 11.6% is a 12.3-point move, not a
    # +1784% relative explosion — it must not trip a 50-point gate.
    rows = bench_diff(
        {"obs": {"null_sink_overhead_pct": 11.6}},
        {"obs": {"null_sink_overhead_pct": -0.7}},
        threshold_pct=50.0,
    )
    (row,) = rows
    assert row["scale"] == "absolute"
    assert row["rel_pct"] == 12.3
    assert not row["regression"]
    # A genuine blow-up past the threshold still gates.
    rows = bench_diff(
        {"obs": {"null_sink_overhead_pct": 80.0}},
        {"obs": {"null_sink_overhead_pct": 1.0}},
        threshold_pct=50.0,
    )
    assert rows[0]["regression"]


def test_sub_100ms_timings_never_gate():
    rows = bench_diff(
        {"ledger": {"report_render_s": 0.02}},
        {"ledger": {"report_render_s": 0.0003}},
        threshold_pct=50.0,
    )
    assert not rows[0]["regression"]
    # At meaningful magnitudes the same metric shape still gates.
    rows = bench_diff(
        {"ledger": {"report_render_s": 2.0}},
        {"ledger": {"report_render_s": 1.0}},
        threshold_pct=50.0,
    )
    assert rows[0]["regression"]


def test_scalar_sections_skips_meta_and_nested():
    bench = {
        "version": "1.0",
        "history": [],
        "kernel": {"events_per_s": 1000, "events": 5,
                   "nested": {"x": 1}, "note": "text"},
    }
    sections = scalar_sections(bench)
    assert sections == {"kernel": {"events_per_s": 1000.0, "events": 5.0}}


def _bench(events_per_s, wall_s):
    return {"kernel": {"events_per_s": events_per_s},
            "suite": {"wall_s": wall_s}}


def test_no_regression_within_threshold():
    rows = bench_diff(_bench(950, 10.5), _bench(1000, 10.0),
                      threshold_pct=50.0)
    assert not any(r["regression"] for r in rows)


def test_throughput_drop_regresses():
    rows = bench_diff(_bench(400, 10.0), _bench(1000, 10.0),
                      threshold_pct=50.0)
    bad = [r for r in rows if r["regression"]]
    assert [(r["section"], r["metric"]) for r in bad] == [
        ("kernel", "events_per_s")
    ]
    assert bad[0]["rel_pct"] == -60.0


def test_wall_clock_increase_regresses():
    rows = bench_diff(_bench(1000, 20.0), _bench(1000, 10.0),
                      threshold_pct=50.0)
    bad = [r for r in rows if r["regression"]]
    assert [(r["section"], r["metric"]) for r in bad] == [
        ("suite", "wall_s")
    ]


def test_improvements_never_regress():
    rows = bench_diff(_bench(9000, 1.0), _bench(1000, 10.0),
                      threshold_pct=1.0)
    assert not any(r["regression"] for r in rows)


def test_one_sided_metrics_never_regress():
    current = {"new_section": {"things_per_s": 5.0}}
    baseline = {"old_section": {"wall_s": 3.0}}
    rows = bench_diff(current, baseline, threshold_pct=1.0)
    assert not any(r["regression"] for r in rows)
    by_metric = {r["metric"]: r for r in rows}
    assert by_metric["things_per_s"]["baseline"] is None
    assert by_metric["wall_s"]["current"] is None


def test_directionless_metrics_report_but_never_gate():
    rows = bench_diff({"s": {"frames": 1.0}}, {"s": {"frames": 100.0}},
                      threshold_pct=1.0)
    (row,) = rows
    assert row["direction"] is None and not row["regression"]


def test_threshold_must_be_positive():
    with pytest.raises(ValueError):
        bench_diff({}, {}, threshold_pct=0.0)


def test_baseline_from_history():
    assert baseline_from_history({"history": []}) is None
    assert baseline_from_history({}) is None
    last = {"kernel": {"events_per_s": 5}}
    assert baseline_from_history({"history": [{"a": 1}, last]}) == last


def test_render_diff_marks_regressions():
    rows = bench_diff(_bench(400, 10.0), _bench(1000, 10.0),
                      threshold_pct=50.0)
    text = render_diff(rows)
    assert "REGRESSION" in text
    assert "1 regression(s)" in text
    assert render_diff([]) == "no comparable metrics"


def test_load_bench_roundtrip(tmp_path):
    doc = _bench(1000, 10.0)
    path = tmp_path / "b.json"
    path.write_text(json.dumps(doc), encoding="utf-8")
    assert load_bench(path) == doc


def test_committed_bench_gates_clean():
    """The committed artifact must pass its own CI gate."""
    import pathlib

    bench_path = (
        pathlib.Path(__file__).resolve().parents[2] / "BENCH_substrate.json"
    )
    bench = load_bench(bench_path)
    baseline = baseline_from_history(bench)
    assert baseline is not None
    rows = bench_diff(bench, baseline, threshold_pct=60.0)
    bad = [r for r in rows if r["regression"]]
    assert not bad, f"committed bench regresses vs its history: {bad}"
