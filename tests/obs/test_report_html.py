"""HTML report: self-containment, determinism, and chart coverage."""

from __future__ import annotations

import pytest

from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.obs import Telemetry
from repro.obs.report import build_html_report, write_html_report

from tests.conftest import tiny_battery_factory
from tests.obs.html_schema import validate_html


@pytest.fixture(scope="module")
def runs():
    """Two contrasting experiments with full telemetry."""
    return {
        label: run_experiment(
            PAPER_EXPERIMENTS[label],
            battery_factory=tiny_battery_factory,
            telemetry=True,
            monitor_interval_s=60.0,
            mode="fast",
        )
        for label in ("1", "2")
    }


@pytest.fixture(scope="module")
def html(runs):
    return build_html_report(runs, title="test report")


class TestSelfContainment:
    def test_validator_passes(self, html):
        assert validate_html(html) == []

    def test_validator_rejects_external_refs(self):
        page = "<!DOCTYPE html>\n<html><body></body></html>"
        assert any("missing" in p for p in validate_html(page))
        bad = page.replace(
            "<body>", '<body><script src="https://cdn.example/x.js">'
        )
        assert any("script" in p for p in validate_html(bad))

    def test_single_document(self, html):
        assert html.startswith("<!DOCTYPE html>")
        assert html.count("<html") == 1
        assert html.rstrip().endswith("</html>")


class TestContent:
    def test_every_run_gets_charts(self, html, runs):
        # Per run: discharge + energy bars + latency histogram; plus the
        # suite-level Fig. 10 ordering chart.
        assert html.count("<svg") >= 3 * len(runs) + 1
        for label in runs:
            assert f'id="run-{label}"' in html

    def test_conservation_table_present(self, html):
        assert "Energy conservation" in html
        assert "rel error" in html
        assert "FAIL" not in html  # all checks pass on these runs

    def test_ordering_section_present(self, html):
        assert "Fig. 10" in html

    def test_title_is_escaped(self, runs):
        page = build_html_report(runs, title="a <b> & 'c'")
        assert "a &lt;b&gt; &amp;" in page
        assert "<b> &" not in page


class TestDeterminism:
    def test_same_runs_same_bytes(self, runs):
        assert build_html_report(runs) == build_html_report(runs)

    def test_write_round_trip(self, runs, tmp_path):
        path = tmp_path / "report.html"
        write_html_report(path, runs, title="rt")
        text = path.read_text(encoding="utf-8")
        assert validate_html(text) == []
        assert text == build_html_report(runs, title="rt")


def test_truncated_run_is_flagged():
    run = run_experiment(
        PAPER_EXPERIMENTS["2"],
        battery_factory=tiny_battery_factory,
        telemetry=Telemetry(max_events=200),
        max_frames=40,
    )
    page = build_html_report({"2": run})
    assert validate_html(page) == []
    assert "truncated" in page
