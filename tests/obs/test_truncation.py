"""Event-log truncation: seal() semantics and inconclusive verdicts."""

from __future__ import annotations

import pytest

from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.obs import Telemetry
from repro.obs.checks import (
    ChargeMonotonicMonitor,
    FrameDeadlineMonitor,
    paper_monitors,
    replay,
)
from repro.obs.events import EventLog, TelemetryEvent

from tests.conftest import tiny_battery_factory


def _fill(log: EventLog, n: int) -> None:
    for i in range(n):
        log.emit("frame.emit", float(i), "host", frame=i)


class TestSeal:
    def test_noop_without_drops(self):
        log = EventLog(max_events=10)
        _fill(log, 5)
        log.seal(5.0)
        assert log.dropped == 0
        assert all(e.kind != "log.truncated" for e in log.records)

    def test_terminal_record_carries_drop_count(self):
        log = EventLog(max_events=4)
        _fill(log, 10)
        assert log.dropped == 6
        log.seal(10.0)
        # The marker bypasses the cap: 4 stored + 1 terminal record.
        assert len(log) == 5
        tail = log.records[-1]
        assert tail.kind == "log.truncated"
        assert tail.ts == 10.0
        assert tail.data == {"dropped": 6}

    def test_reseal_refreshes_in_place(self):
        log = EventLog(max_events=2)
        _fill(log, 5)
        log.seal(5.0)
        log.emit("frame.emit", 6.0, "host", frame=6)  # dropped too
        log.seal(6.0)
        tails = [e for e in log.records if e.kind == "log.truncated"]
        assert len(tails) == 1
        assert tails[0].ts == 6.0
        assert tails[0].data == {"dropped": 4}

    def test_reseal_after_read_refreshes_materialized_tail(self):
        log = EventLog(max_events=2)
        _fill(log, 4)
        log.seal(4.0)
        assert log.records[-1].data == {"dropped": 2}  # forces _flush
        log.emit("frame.emit", 5.0, "host", frame=5)
        log.seal(5.0)
        tails = [e for e in log.records if e.kind == "log.truncated"]
        assert len(tails) == 1 and tails[0].data == {"dropped": 3}

    def test_disabled_log_ignores_seal(self):
        log = EventLog(enabled=False)
        log.seal(1.0)
        assert len(log) == 0


class TestInconclusiveVerdicts:
    def test_replay_of_truncated_log_is_inconclusive(self):
        log = EventLog(max_events=3)
        for i in range(6):
            log.emit(
                "frame.result", float(i), "host",
                frame=i, latency_s=1.0, deadline_s=2.3,
            )
        log.seal(6.0)
        (verdict,) = replay(log, [FrameDeadlineMonitor(deadline_s=2.3)])
        assert not verdict.ok
        assert verdict.inconclusive
        assert "truncated" in verdict.detail
        assert "3 events dropped" in verdict.detail
        assert verdict.as_dict()["inconclusive"] is True

    def test_violation_beats_inconclusive(self):
        log = EventLog(max_events=3)
        for i in range(6):
            log.emit(
                "frame.result", float(i), "host",
                frame=i, latency_s=9.0, deadline_s=2.3,
            )
        log.seal(6.0)
        (verdict,) = replay(log, [FrameDeadlineMonitor(deadline_s=2.3)])
        # A witnessed violation is conclusive even over a partial log.
        assert not verdict.ok
        assert not verdict.inconclusive
        assert "truncated" not in verdict.detail

    def test_live_tap_stays_conclusive(self):
        log = EventLog(max_events=3)
        monitor = log.attach(ChargeMonotonicMonitor())
        for i in range(8):
            log.emit(
                "battery.draw", float(i), "node1",
                charge_fraction=1.0 - i / 10.0,
            )
        log.seal(8.0)
        # The tap saw every event (including dropped ones), so its
        # verdict is conclusive; only stored-log replays go inconclusive.
        live = monitor.verdict()
        assert live.ok and not live.inconclusive
        (replayed,) = replay(log, [ChargeMonotonicMonitor()])
        assert replayed.inconclusive


class TestEngineIntegration:
    def test_run_seals_truncated_log(self):
        run = run_experiment(
            PAPER_EXPERIMENTS["2"],
            battery_factory=tiny_battery_factory,
            telemetry=Telemetry(max_events=200),
            max_frames=40,
        )
        log = run.obs.events
        assert log.dropped > 0
        assert log.records[-1].kind == "log.truncated"
        assert log.records[-1].data["dropped"] == log.dropped
        verdicts = replay(log, paper_monitors(PAPER_EXPERIMENTS["2"]))
        assert any(v.inconclusive for v in verdicts)
        assert all("violated" not in v.detail for v in verdicts if v.inconclusive)

    def test_untruncated_run_has_no_marker(self):
        run = run_experiment(
            PAPER_EXPERIMENTS["2"],
            battery_factory=tiny_battery_factory,
            telemetry=True,
            max_frames=10,
        )
        log = run.obs.events
        assert log.dropped == 0
        assert all(e.kind != "log.truncated" for e in log.records)
        verdicts = replay(log, paper_monitors(PAPER_EXPERIMENTS["2"]))
        assert not any(v.inconclusive for v in verdicts)


def test_truncated_event_round_trips():
    event = TelemetryEvent("log.truncated", 3.5, "", {"dropped": 42})
    assert TelemetryEvent.from_dict(event.as_dict()) == event
