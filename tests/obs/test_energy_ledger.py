"""Energy-attribution ledger: accounting, conservation, and mode parity."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.hw.battery import KiBaM
from repro.obs.energy import (
    CONSERVATION_REL_TOL,
    EnergyLedger,
    verify_conservation,
)

from tests.conftest import TINY_KIBAM, tiny_battery_factory


class TestLedgerAccounting:
    def test_add_accumulates_charge_and_time(self):
        led = EnergyLedger()
        led.add("n1", "computation", "fft", 100.0, 2.0)
        led.add("n1", "computation", "fft", 100.0, 3.0)
        (row,) = led.rows()
        assert row.charge_mas == 500.0
        assert row.time_s == 5.0
        assert row.charge_mah == 500.0 / 3600.0
        assert row.mean_current_ma == 100.0

    def test_rows_sorted_by_key(self):
        led = EnergyLedger()
        led.add("n2", "idle", "idle", 1.0, 1.0)
        led.add("n1", "communication", "link", 1.0, 1.0)
        led.add("n1", "computation", "fft", 1.0, 1.0)
        keys = [(r.node, r.mode, r.bucket) for r in led.rows()]
        assert keys == sorted(keys)

    def test_node_and_mode_totals(self):
        led = EnergyLedger()
        led.add("n1", "computation", "fft", 3600.0, 1.0)
        led.add("n1", "communication", "link", 3600.0, 2.0)
        led.add("n2", "idle", "idle", 7200.0, 1.0)
        assert led.node_totals_mah() == {"n1": 2.0 + 1.0, "n2": 2.0}
        assert led.mode_totals_mah("n1") == {
            "communication": 2.0, "computation": 1.0,
        }
        assert led.mode_totals_mah() == {
            "communication": 2.0, "computation": 1.0, "idle": 2.0,
        }

    def test_merge_folds_buckets(self):
        a, b = EnergyLedger(), EnergyLedger()
        a.add("n1", "computation", "fft", 10.0, 1.0)
        b.add("n1", "computation", "fft", 20.0, 2.0)
        b.add("n2", "idle", "idle", 5.0, 5.0)
        assert a.merge(b) is a
        assert len(a) == 2
        # current * dt products: 10*1 from a, 20*2 from b.
        assert a.rows()[0].charge_mas == 50.0
        assert a.rows()[0].time_s == 3.0

    def test_round_trip_is_canonical(self):
        led = EnergyLedger()
        # Insertion order differs from sorted order on purpose.
        led.add("n2", "idle", "idle", 0.1 + 0.2, 1.0 / 3.0)
        led.add("n1", "computation", "fft", 1e-17, 2.0)
        payload = led.as_dict()
        clone = EnergyLedger.from_dict(payload)
        assert clone.as_dict() == payload
        # Two equal-content ledgers serialize to equal canonical JSON.
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            clone.as_dict(), sort_keys=True
        )

    def test_conservation_verdicts(self):
        led = EnergyLedger()
        led.add("n1", "computation", "fft", 3600.0, 1.0)  # 1 mAh
        ok, bad = verify_conservation(led, {"n1": 1.0, "n2": 0.5})
        assert ok.node == "n1" and ok.ok and ok.rel_error == 0.0
        assert bad.node == "n2" and not bad.ok  # nothing attributed
        (loose,) = verify_conservation(
            led, {"n1": 1.0 + 2e-6}, rel_tol=CONSERVATION_REL_TOL
        )
        assert not loose.ok
        (loose2,) = verify_conservation(led, {"n1": 1.0 + 2e-6}, rel_tol=1e-5)
        assert loose2.ok


class TestLedgerFromSimulation:
    @pytest.fixture(scope="class")
    def runs(self):
        """Exact and fast runs of experiment 2 on a tiny battery."""
        spec = PAPER_EXPERIMENTS["2"]
        return {
            mode: run_experiment(
                spec,
                battery_factory=tiny_battery_factory,
                telemetry=True,
                monitor_interval_s=60.0,
                mode=mode,
            )
            for mode in ("exact", "fast")
        }

    def test_exact_conservation_within_tolerance(self, runs):
        run = runs["exact"]
        checks = verify_conservation(
            run.obs.energy, run.pipeline.delivered_mah
        )
        assert len(checks) == 2
        assert all(c.ok for c in checks), [c.as_dict() for c in checks]
        # The conservation basis is shared summands, so the agreement is
        # far tighter than the contractual 1e-6.
        assert all(c.rel_error < 1e-9 for c in checks)

    def test_fast_conservation_within_tolerance(self, runs):
        run = runs["fast"]
        checks = verify_conservation(
            run.obs.energy, run.pipeline.delivered_mah
        )
        assert all(c.ok for c in checks), [c.as_dict() for c in checks]

    def test_buckets_name_atr_blocks(self, runs):
        buckets = {r.bucket for r in runs["exact"].obs.energy.rows()}
        assert "link" in buckets
        assert "target_detection" in buckets  # node1's block in exp 2
        # Frame suffixes are stripped: a bucket per block, not per frame.
        assert not any(" f" in b for b in buckets)

    def test_exact_and_fast_ledgers_agree(self, runs):
        exact = {
            tuple(e[:3]): e[3]
            for e in runs["exact"].obs.energy.as_dict()["entries"]
        }
        fast = {
            tuple(e[:3]): e[3]
            for e in runs["fast"].obs.energy.as_dict()["entries"]
        }
        assert set(exact) == set(fast)
        totals = runs["exact"].obs.energy.node_totals_mah()
        for key, charge in exact.items():
            # Per-bucket agreement, scaled against the node's total so
            # float residue in near-empty buckets (femto-mAh idle time)
            # does not dominate a relative comparison.
            scale = max(totals[key[0]] * 3600.0, 1.0)
            assert abs(charge - fast[key]) / scale < CONSERVATION_REL_TOL

    def test_ledger_survives_payload_round_trip(self, runs):
        obs = runs["exact"].obs
        clone = type(obs).from_dict(obs.as_dict())
        assert clone.energy.as_dict() == obs.energy.as_dict()


class TestLedgerNoIO:
    def test_no_io_exact_and_fast_totals_agree(self):
        spec = PAPER_EXPERIMENTS["0A"]
        totals = {}
        for mode in ("exact", "fast"):
            run = run_experiment(
                spec,
                battery_factory=tiny_battery_factory,
                telemetry=True,
                mode=mode,
            )
            totals[mode] = run.obs.energy.node_totals_mah()["node1"]
            delivered = None
            for g in run.obs.metrics.gauges:
                if g.name == "node.delivered_mah.node1":
                    delivered = g.value
            assert delivered is not None
            rel = abs(totals[mode] - delivered) / max(delivered, 1e-12)
            assert rel < CONSERVATION_REL_TOL
        rel = abs(totals["exact"] - totals["fast"]) / totals["exact"]
        assert rel < CONSERVATION_REL_TOL

    def test_null_sink_keeps_ledger_empty(self):
        run = run_experiment(
            PAPER_EXPERIMENTS["0A"],
            battery_factory=tiny_battery_factory,
            telemetry=False,
        )
        assert run.obs is None  # no telemetry, no ledger anywhere


def test_ledger_uses_tiny_kibam_scale():
    # Guard: the class fixture above relies on the tiny cell dying fast.
    assert KiBaM(TINY_KIBAM).capacity_mah == 25.0


def test_paper_suite_ledgers_conserve_energy_fast_mode():
    """Every paper pipeline experiment conserves energy in fast mode."""
    capacity = dataclasses.replace(TINY_KIBAM, capacity_mah=20.0)
    for label in ("1", "1A", "2", "2A", "2B", "2C"):
        run = run_experiment(
            PAPER_EXPERIMENTS[label],
            battery_factory=lambda: KiBaM(capacity),
            telemetry=True,
            monitor_interval_s=120.0,
            mode="fast",
        )
        checks = verify_conservation(
            run.obs.energy, run.pipeline.delivered_mah
        )
        assert checks and all(c.ok for c in checks), (
            label, [c.as_dict() for c in checks],
        )
