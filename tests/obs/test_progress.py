"""Progress plane rendering: dashboard text, plain stream, SVG track."""

import io

from repro.exec import SweepExecutor
from repro.obs.flight import FlightRecorder, journal_to_rows
from repro.obs.progress import (
    ProgressRenderer,
    fleet_timeline_svg,
    format_eta,
    render_bar,
    render_snapshot,
)


def double(x: int) -> int:
    return 2 * x


def _snapshot():
    flight = FlightRecorder(label="demo")
    flight.phase("work", total=4)
    SweepExecutor(jobs=1, flight=flight).map(double, [1, 2, 3, 4])
    flight.finish()
    return flight


def test_format_eta():
    assert format_eta(None) == "--"
    assert format_eta(12.4) == "12s"
    assert format_eta(200) == "3m20s"
    assert format_eta(3720) == "1h02m"


def test_render_bar():
    assert render_bar(2, 4, width=8) == "[####....] 2/4"
    assert render_bar(0, None, width=4) == "[????] 0/?"
    assert render_bar(9, 4, width=4).startswith("[####]")


def test_render_snapshot_dashboard():
    flight = _snapshot()
    text = render_snapshot(flight.snapshot())
    assert "fleet demo" in text
    assert "[done]" in text
    assert "work" in text
    assert "4/4" in text
    assert "serial" in text  # the one worker lane


def test_render_snapshot_accepts_plain_dict():
    flight = _snapshot()
    text = render_snapshot(flight.snapshot().as_dict())
    assert "fleet demo" in text


def test_plain_renderer_writes_single_done_line():
    stream = io.StringIO()
    renderer = ProgressRenderer(stream=stream, mode="plain")
    flight = FlightRecorder(label="demo", progress=renderer)
    SweepExecutor(jobs=1, flight=flight).map(double, [1, 2, 3])
    flight.finish()
    flight.finish()  # double-finish must not duplicate the [done] line
    renderer.close()
    out = stream.getvalue()
    assert out.count("[done]") == 1
    assert "progress demo" in out


def test_tty_renderer_redraws_in_place():
    stream = io.StringIO()
    renderer = ProgressRenderer(stream=stream, mode="tty")
    flight = FlightRecorder(label="demo", progress=renderer)
    SweepExecutor(jobs=1, flight=flight).map(double, [1, 2, 3])
    flight.finish()
    renderer.close()
    out = stream.getvalue()
    assert "\x1b[2K" in out  # line-clear escape = in-place redraw
    assert "fleet demo" in out


def test_fleet_timeline_svg():
    flight = _snapshot()
    rows = journal_to_rows(flight.records, full=True)
    svg = fleet_timeline_svg(rows)
    assert svg.startswith("<svg")
    assert "serial" in svg
    assert svg.count("<rect") >= len(rows)


def test_fleet_timeline_svg_handles_content_only_rows():
    flight = _snapshot()
    rows = journal_to_rows(flight.records, full=False)
    # Content-only exports carry no timings — the track degrades to an
    # explanatory note instead of a bogus gantt.
    assert "content-only" in fleet_timeline_svg(rows)


def test_fleet_timeline_svg_caps_items():
    flight = _snapshot()
    rows = journal_to_rows(flight.records, full=True)
    svg = fleet_timeline_svg(rows, max_items=2)
    assert "beyond the 2 drawn" in svg
