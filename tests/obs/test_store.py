"""Run registry: persistence, dedup, diffing, and mode-independence.

The acceptance bar for the registry is strict: the database contents
must be *byte-identical* whether a suite ran serially, fanned over
worker processes, or replayed from the result cache. That forbids
wall-clock columns and scheduling-dependent ordering, and it is what
these tests pin down alongside the ordinary CRUD behaviour.
"""

from __future__ import annotations

import pytest

from repro.core.experiments import (
    PAPER_EXPERIMENTS,
    experiment_fingerprint,
    run_experiment,
    run_paper_suite,
)
from repro.errors import ConfigurationError
from repro.exec import ResultCache
from repro.obs import RunRegistry, build_run_record, diff_records
from repro.obs.store import git_revision

from tests.conftest import tiny_battery_factory

_KW = dict(
    battery_factory=tiny_battery_factory,
    max_frames=15,
    telemetry=True,
    monitor_interval_s=60.0,
)
_LABELS = ["1A", "2", "2A"]


@pytest.fixture()
def run_2a():
    return run_experiment(PAPER_EXPERIMENTS["2A"], **_KW)


def _record(run, label="2A"):
    return build_run_record(
        run, experiment_fingerprint(PAPER_EXPERIMENTS[label], _KW)
    )


class TestRunRecord:
    def test_summary_carries_headline_scalars(self, run_2a):
        record = _record(run_2a)
        assert record.label == "2A"
        assert record.summary["frames"] == run_2a.frames
        assert record.summary["t_hours"] == run_2a.t_hours
        assert record.summary["tnorm_hours"] == run_2a.t_hours / 2
        assert set(record.summary["death_times_s"]) <= {"node1", "node2"}
        assert record.summary["late_results"] == run_2a.pipeline.late_results
        assert record.summary["delivered_mah"].keys() == {"node1", "node2"}

    def test_metrics_snapshot_and_event_digest(self, run_2a):
        record = _record(run_2a)
        assert record.n_events == len(run_2a.obs.events)
        assert record.n_events > 0
        assert record.event_digest is not None
        assert record.metrics == run_2a.obs.metrics.as_dict()

    def test_run_id_is_deterministic_and_config_sensitive(self, run_2a):
        a = _record(run_2a)
        b = _record(run_2a)
        assert a.run_id == b.run_id
        other = build_run_record(run_2a, "different-fingerprint")
        assert other.run_id != a.run_id

    def test_no_telemetry_run_registers_without_events(self):
        run = run_experiment(
            PAPER_EXPERIMENTS["2"],
            battery_factory=tiny_battery_factory,
            max_frames=5,
        )
        record = build_run_record(
            run, experiment_fingerprint(PAPER_EXPERIMENTS["2"], {})
        )
        assert record.n_events == 0
        assert record.event_digest is None
        assert record.metrics == {}


class TestRunRegistry:
    def test_record_and_reload(self, tmp_path, run_2a):
        registry = RunRegistry(tmp_path / "runs.sqlite")
        record = _record(run_2a)
        assert registry.record(record) is True
        assert len(registry) == 1
        loaded = registry.get(record.run_id[:10])
        assert loaded == record

    def test_reregistration_is_a_noop(self, tmp_path, run_2a):
        registry = RunRegistry(tmp_path / "runs.sqlite")
        record = _record(run_2a)
        assert registry.record(record) is True
        assert registry.record(record) is False
        assert len(registry) == 1

    def test_get_rejects_unknown_and_ambiguous(self, tmp_path, run_2a):
        registry = RunRegistry(tmp_path / "runs.sqlite")
        with pytest.raises(ConfigurationError, match="no registered run"):
            registry.get("feedface")
        registry.record(_record(run_2a))
        with pytest.raises(ConfigurationError, match="empty run id"):
            registry.get("")
        # A prefix shared by nothing else resolves; the full id too.
        record = registry.list_runs()[0]
        assert registry.get(record.run_id).run_id == record.run_id

    def test_latest_filters_by_label_and_fingerprint(self, tmp_path, run_2a):
        registry = RunRegistry(tmp_path / "runs.sqlite")
        record = _record(run_2a)
        registry.record(record)
        assert registry.latest("2A") == record
        assert registry.latest("2C") is None
        assert registry.latest("2A", fingerprint=record.fingerprint) == record
        assert registry.latest("2A", fingerprint="something-else") is None

    def test_list_runs_paginates(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs.sqlite")
        for label in _LABELS:
            run = run_experiment(PAPER_EXPERIMENTS[label], **_KW)
            registry.record(_record(run, label))
        everything = registry.list_runs()
        assert [r.label for r in everything] == list(reversed(_LABELS))
        assert registry.list_runs(limit=2) == everything[:2]
        assert registry.list_runs(limit=2, offset=1) == everything[1:3]
        # A bare offset pages without a limit; past-the-end is empty.
        assert registry.list_runs(offset=2) == everything[2:]
        assert registry.list_runs(offset=10) == []
        with pytest.raises(ConfigurationError, match="offset"):
            registry.list_runs(offset=-1)

    def test_reset_empties_the_registry(self, tmp_path, run_2a):
        registry = RunRegistry(tmp_path / "runs.sqlite")
        registry.record(_record(run_2a))
        assert registry.reset() == 1
        assert len(registry) == 0
        assert registry.list_runs() == []
        # Resetting a registry whose file never existed is fine too.
        assert RunRegistry(tmp_path / "missing.sqlite").reset() == 0

    def test_missing_database_reads_as_empty(self, tmp_path):
        registry = RunRegistry(tmp_path / "never-created.sqlite")
        assert len(registry) == 0
        assert registry.list_runs() == []
        assert registry.dump_rows() == []
        assert not (tmp_path / "never-created.sqlite").exists()


class TestModeIndependence:
    """The acceptance criterion: registry bytes == across execution modes."""

    def _dump(self, tmp_path, name, **suite_kwargs):
        registry = RunRegistry(tmp_path / f"{name}.sqlite")
        run_paper_suite(_LABELS, registry=registry, **suite_kwargs, **_KW)
        return registry.dump_rows()

    def test_serial_parallel_and_cached_registries_identical(self, tmp_path):
        serial = self._dump(tmp_path, "serial", jobs=1)
        parallel = self._dump(tmp_path, "parallel", jobs=4)
        cache = ResultCache(tmp_path / "cache")
        filled = self._dump(tmp_path, "cache-fill", jobs=2, cache=cache)
        assert cache.misses == len(_LABELS)
        replayed = self._dump(tmp_path, "cache-replay", jobs=2, cache=cache)
        assert cache.hits == len(_LABELS)
        assert serial == parallel == filled == replayed
        assert len(serial) == len(_LABELS)

    def test_registry_param_does_not_change_fingerprints(self, tmp_path):
        spec = PAPER_EXPERIMENTS["2A"]
        with_registry = dict(_KW, registry=RunRegistry(tmp_path / "r.sqlite"))
        assert experiment_fingerprint(spec, _KW) == experiment_fingerprint(
            spec, with_registry
        )

    def test_run_experiment_accepts_registry_path(self, tmp_path):
        db = tmp_path / "direct.sqlite"
        run_experiment(PAPER_EXPERIMENTS["2A"], registry=str(db), **_KW)
        registry = RunRegistry(db)
        assert len(registry) == 1
        assert registry.latest("2A").summary["frames"] > 0


class TestDiffRecords:
    def test_different_policies_produce_nonzero_deltas(self, tmp_path):
        runs = run_paper_suite(["2", "2A"], **_KW)
        a = build_run_record(
            runs["2"], experiment_fingerprint(PAPER_EXPERIMENTS["2"], _KW)
        )
        b = build_run_record(
            runs["2A"], experiment_fingerprint(PAPER_EXPERIMENTS["2A"], _KW)
        )
        rows = diff_records(a, b)
        nonzero = [r for r in rows if r["delta"]]
        assert nonzero, "different DVS policies must differ in some metric"
        by_name = {r["metric"]: r for r in rows}
        # 2A switches DVS levels during I/O; 2 never does.
        assert by_name["counter:events.dvs.switch"]["delta"] != 0

    def test_identical_records_diff_to_zero(self, run_2a):
        record = _record(run_2a)
        rows = diff_records(record, record, threshold_pct=1.0)
        assert rows
        assert all(r["delta"] == 0.0 for r in rows)
        assert not any(r["regression"] for r in rows)

    def test_threshold_flags_regressions(self, run_2a):
        record = _record(run_2a)
        bumped = build_run_record(run_2a, record.fingerprint)
        summary = dict(bumped.summary)
        summary["frames"] = summary["frames"] * 2
        import dataclasses

        bumped = dataclasses.replace(bumped, summary=summary)
        rows = diff_records(record, bumped, threshold_pct=5.0)
        flagged = {r["metric"] for r in rows if r["regression"]}
        assert "frames" in flagged


def test_git_revision_in_a_repo_or_none():
    sha = git_revision()
    assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))
