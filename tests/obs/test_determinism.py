"""Telemetry determinism: identical seeds yield identical event logs.

The event log records *simulated* time only, and metric aggregation is
exact, so a run's telemetry must be bit-identical whether the suite ran
serially, fanned over worker processes, or decoded from the result
cache. Wall-clock span records are the documented exception and are
excluded from these comparisons.
"""

from __future__ import annotations

import json

from repro.core.experiments import run_paper_suite
from repro.exec import ResultCache

from tests.conftest import tiny_battery_factory

_LABELS = ["1A", "2", "2A"]
_KW = dict(
    battery_factory=tiny_battery_factory,
    max_frames=15,
    telemetry=True,
    trace=True,
    monitor_interval_s=60.0,
)


def _fingerprint(runs):
    """Deterministic digest of each run's telemetry (spans excluded)."""
    out = {}
    for label, run in runs.items():
        obs = run.obs
        assert obs is not None and run.trace is not None
        out[label] = json.dumps(
            {
                "events": obs.events.as_dict(),
                "metrics": obs.metrics.as_dict(),
                "trace": run.trace.as_dict(),
                "monitors": {
                    name: mon.as_dict()
                    for name, mon in sorted(run.pipeline.monitors.items())
                }
                if run.pipeline is not None
                else None,
            },
            sort_keys=True,
        )
    return out


def test_event_logs_identical_serial_vs_parallel():
    serial = _fingerprint(run_paper_suite(_LABELS, jobs=1, **_KW))
    parallel = _fingerprint(run_paper_suite(_LABELS, jobs=4, **_KW))
    assert serial == parallel


def test_event_logs_identical_through_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    first = _fingerprint(run_paper_suite(_LABELS, jobs=2, cache=cache, **_KW))
    assert cache.misses == len(_LABELS) and cache.hits == 0
    second = _fingerprint(run_paper_suite(_LABELS, jobs=2, cache=cache, **_KW))
    assert cache.hits == len(_LABELS)
    assert first == second


def test_same_seed_same_events_repeated_in_process():
    a = _fingerprint(run_paper_suite(_LABELS, jobs=1, **_KW))
    b = _fingerprint(run_paper_suite(_LABELS, jobs=1, **_KW))
    assert a == b
