"""Registry lifecycle: gc by count and age, migration of legacy DBs."""

import sqlite3

import pytest

from repro.errors import ConfigurationError
from repro.obs import RunRegistry
from repro.obs.store import RunRecord, build_explore_record


def fake_record(i: int, label: str = "2A") -> RunRecord:
    return RunRecord(
        run_id=f"{i:064x}",
        label=label,
        fingerprint="f" * 64,
        version="1.0.0",
        git_sha=None,
        n_events=0,
        event_digest=None,
        summary={"t_hours": float(i), "frames": i},
        metrics={},
    )


@pytest.fixture()
def registry(tmp_path):
    return RunRegistry(tmp_path / "runs.sqlite")


class TestGcKeepLast:
    def test_keeps_newest_n(self, registry):
        for i in range(10):
            registry.record(fake_record(i))
        removed = registry.gc(keep_last=3)
        assert removed == 7
        remaining = registry.list_runs()
        assert [r.summary["frames"] for r in remaining] == [9, 8, 7]

    def test_label_scoped(self, registry):
        for i in range(4):
            registry.record(fake_record(i, label="2A"))
        for i in range(4, 8):
            registry.record(fake_record(i, label="2C"))
        removed = registry.gc(keep_last=1, label="2A")
        assert removed == 3
        assert len(registry.list_runs(label="2A")) == 1
        assert len(registry.list_runs(label="2C")) == 4

    def test_trims_explore_sessions_too(self, registry):
        for i in range(5):
            registry.record_explore(
                build_explore_record("fp", i, "predict", [{"name": "predict"}])
            )
        registry.gc(keep_last=2)
        assert len(registry.list_explore_sessions()) == 2

    def test_keep_more_than_present_removes_nothing(self, registry):
        registry.record(fake_record(0))
        assert registry.gc(keep_last=10) == 0


class TestGcByAge:
    def test_young_rows_survive(self, registry):
        registry.record(fake_record(0))
        assert registry.gc(older_than_days=1.0) == 0
        assert len(registry.list_runs()) == 1

    def test_zero_days_removes_everything(self, registry):
        for i in range(3):
            registry.record(fake_record(i))
        assert registry.gc(older_than_days=0.0) == 3
        assert registry.list_runs() == []

    def test_legacy_rows_without_timestamp_count_as_old(self, registry):
        registry.record(fake_record(0))
        with sqlite3.connect(registry.path) as conn:
            conn.execute("UPDATE runs SET created_at = NULL")
        assert registry.gc(older_than_days=365.0) == 1

    def test_age_respects_label_scope(self, registry):
        registry.record(fake_record(0, label="2A"))
        registry.record(fake_record(1, label="2C"))
        assert registry.gc(older_than_days=0.0, label="2A") == 1
        assert len(registry.list_runs(label="2C")) == 1


class TestGcValidation:
    def test_needs_a_criterion(self, registry):
        with pytest.raises(ConfigurationError, match="gc needs"):
            registry.gc()

    def test_negative_values_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            registry.gc(keep_last=-1)
        with pytest.raises(ConfigurationError):
            registry.gc(older_than_days=-1.0)

    def test_missing_db_is_empty(self, registry):
        assert registry.gc(keep_last=5) == 0


class TestMigration:
    def test_pre_timestamp_database_gains_created_at(self, tmp_path):
        path = tmp_path / "old.sqlite"
        # A database created by the previous schema (no created_at, no
        # explore_sessions table).
        with sqlite3.connect(path) as conn:
            conn.execute(
                "CREATE TABLE runs (run_id TEXT PRIMARY KEY, label TEXT "
                "NOT NULL, fingerprint TEXT NOT NULL, version TEXT NOT "
                "NULL, git_sha TEXT, n_events INTEGER NOT NULL, "
                "event_digest TEXT, summary TEXT NOT NULL, metrics TEXT "
                "NOT NULL, seq INTEGER NOT NULL)"
            )
            conn.execute(
                "INSERT INTO runs VALUES ('a'*1, '2A', 'f', '0.9', NULL, "
                "0, NULL, '{}', '{}', 1)"
            )
        registry = RunRegistry(path)
        records = registry.list_runs()
        assert len(records) == 1
        # Legacy row has no timestamp: age-based gc treats it as old...
        assert registry.gc(older_than_days=9999.0) == 1
        # ...and new writes stamp created_at so they survive the same gc.
        registry.record(fake_record(1))
        assert registry.gc(older_than_days=9999.0) == 0

    def test_dump_rows_excludes_created_at(self, registry):
        registry.record(fake_record(0))
        rows = registry.dump_rows()
        assert len(rows) == 1
        # 9 content columns + seq; the wall-clock column must not leak
        # into the determinism dump.
        assert len(rows[0]) == 10
