"""EventLog: null-sink semantics, bounded capacity, round-trips."""

from __future__ import annotations

import pytest

from repro.obs import NULL_LOG, EventLog, TelemetryEvent


class TestTelemetryEvent:
    def test_round_trip(self):
        ev = TelemetryEvent("link.xfer", 1.25, "node1", {"bytes": 7500})
        assert TelemetryEvent.from_dict(ev.as_dict()) == ev

    def test_frozen(self):
        ev = TelemetryEvent("k", 0.0, "a", {})
        with pytest.raises(AttributeError):
            ev.kind = "other"  # type: ignore[misc]


class TestEventLog:
    def test_disabled_log_is_falsy_and_records_nothing(self):
        log = EventLog(enabled=False)
        assert not log
        log.emit("link.xfer", 0.0, "node1")
        assert log.records == []

    def test_null_log_singleton_is_disabled(self):
        assert not NULL_LOG
        NULL_LOG.emit("anything", 0.0, "x")
        assert NULL_LOG.records == []

    def test_enabled_log_is_truthy_and_records(self):
        log = EventLog()
        assert log
        log.emit("dvs.switch", 2.0, "node1", from_mhz=59.0, to_mhz=103.2)
        assert len(log.records) == 1
        ev = log.records[0]
        assert ev.kind == "dvs.switch"
        assert ev.ts == 2.0
        assert ev.actor == "node1"
        assert ev.data == {"from_mhz": 59.0, "to_mhz": 103.2}

    def test_capacity_drops_and_counts(self):
        log = EventLog(max_events=3)
        for i in range(5):
            log.emit("k", float(i), "a")
        assert len(log.records) == 3
        assert log.dropped == 2

    def test_of_kind_and_counts(self):
        log = EventLog()
        log.emit("a", 0.0, "x")
        log.emit("b", 1.0, "x")
        log.emit("a", 2.0, "y")
        assert [e.ts for e in log.of_kind("a")] == [0.0, 2.0]
        assert log.counts_by_kind() == {"a": 2, "b": 1}
        assert log.actors() == ["x", "y"]

    def test_round_trip(self):
        log = EventLog(max_events=10)
        log.emit("a", 0.5, "x", n=1)
        log.emit("b", 1.5, "y", s="t")
        clone = EventLog.from_dict(log.as_dict())
        assert clone.records == log.records
        assert clone.max_events == log.max_events
        assert bool(clone) == bool(log)

    def test_clear(self):
        log = EventLog(max_events=1)
        log.emit("a", 0.0, "x")
        log.emit("a", 1.0, "x")
        log.clear()
        assert log.records == [] and log.dropped == 0
