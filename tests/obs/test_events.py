"""EventLog: null-sink semantics, bounded capacity, round-trips."""

from __future__ import annotations

import pytest

from repro.obs import NULL_LOG, EventLog, TelemetryEvent


class TestTelemetryEvent:
    def test_round_trip(self):
        ev = TelemetryEvent("link.xfer", 1.25, "node1", {"bytes": 7500})
        assert TelemetryEvent.from_dict(ev.as_dict()) == ev

    def test_frozen(self):
        ev = TelemetryEvent("k", 0.0, "a", {})
        with pytest.raises(AttributeError):
            ev.kind = "other"  # type: ignore[misc]


class TestEventLog:
    def test_disabled_log_is_falsy_and_records_nothing(self):
        log = EventLog(enabled=False)
        assert not log
        log.emit("link.xfer", 0.0, "node1")
        assert log.records == []

    def test_null_log_singleton_is_disabled(self):
        assert not NULL_LOG
        NULL_LOG.emit("anything", 0.0, "x")
        assert NULL_LOG.records == []

    def test_enabled_log_is_truthy_and_records(self):
        log = EventLog()
        assert log
        log.emit("dvs.switch", 2.0, "node1", from_mhz=59.0, to_mhz=103.2)
        assert len(log.records) == 1
        ev = log.records[0]
        assert ev.kind == "dvs.switch"
        assert ev.ts == 2.0
        assert ev.actor == "node1"
        assert ev.data == {"from_mhz": 59.0, "to_mhz": 103.2}

    def test_capacity_drops_and_counts(self):
        log = EventLog(max_events=3)
        for i in range(5):
            log.emit("k", float(i), "a")
        assert len(log.records) == 3
        assert log.dropped == 2

    def test_of_kind_and_counts(self):
        log = EventLog()
        log.emit("a", 0.0, "x")
        log.emit("b", 1.0, "x")
        log.emit("a", 2.0, "y")
        assert [e.ts for e in log.of_kind("a")] == [0.0, 2.0]
        assert log.counts_by_kind() == {"a": 2, "b": 1}
        assert log.actors() == ["x", "y"]

    def test_round_trip(self):
        log = EventLog(max_events=10)
        log.emit("a", 0.5, "x", n=1)
        log.emit("b", 1.5, "y", s="t")
        clone = EventLog.from_dict(log.as_dict())
        assert clone.records == log.records
        assert clone.max_events == log.max_events
        assert bool(clone) == bool(log)

    def test_clear(self):
        log = EventLog(max_events=1)
        log.emit("a", 0.0, "x")
        log.emit("a", 1.0, "x")
        log.clear()
        assert log.records == [] and log.dropped == 0


class TestLazyMaterialization:
    """Emissions buffer as raw tuples until the log is actually read."""

    def test_emit_defers_event_construction(self):
        log = EventLog()
        log.emit("a", 0.0, "x", n=1)
        assert log._records == []  # nothing materialized yet
        assert len(log) == 1

    def test_reading_records_materializes_in_order(self):
        log = EventLog()
        log.emit("a", 0.0, "x")
        log.emit("b", 1.0, "y", n=2)
        records = log.records
        assert [type(e) for e in records] == [TelemetryEvent, TelemetryEvent]
        assert [(e.kind, e.ts, e.actor) for e in records] == [
            ("a", 0.0, "x"),
            ("b", 1.0, "y"),
        ]
        assert records[1].data == {"n": 2}

    def test_summaries_do_not_force_materialization(self):
        log = EventLog()
        log.emit("a", 0.0, "x")
        log.emit("b", 1.0, "y")
        log.emit("a", 2.0, "x")
        assert log.counts_by_kind() == {"a": 2, "b": 1}
        assert log.actors() == ["x", "y"]
        assert len(log) == 3
        assert log._records == []  # still raw tuples

    def test_mixed_buffered_and_materialized_reads_stay_ordered(self):
        log = EventLog()
        log.emit("a", 0.0, "x")
        _ = log.records  # flush
        log.emit("b", 1.0, "y")
        assert [e.kind for e in log] == ["a", "b"]
        assert log.counts_by_kind() == {"a": 1, "b": 1}

    def test_capacity_counts_buffered_events(self):
        log = EventLog(max_events=2)
        for i in range(4):
            log.emit("k", float(i), "a")
        assert len(log) == 2
        assert log.dropped == 2

    def test_record_flushes_before_appending(self):
        log = EventLog()
        log.emit("a", 0.0, "x")
        log.record(TelemetryEvent("b", 1.0, "y"))
        assert [e.kind for e in log.records] == ["a", "b"]

    def test_taps_observe_real_events_online(self):
        class Tap:
            def __init__(self):
                self.seen = []

            def observe(self, event):
                self.seen.append(event)

        log = EventLog()
        log.emit("a", 0.0, "x")  # buffered before the tap attaches
        tap = log.attach(Tap())
        log.emit("b", 1.0, "y", n=3)
        assert len(tap.seen) == 1
        assert isinstance(tap.seen[0], TelemetryEvent)
        assert tap.seen[0].data == {"n": 3}
        assert [e.kind for e in log.records] == ["a", "b"]

    def test_serialization_flushes_the_buffer(self):
        import pickle

        log = EventLog()
        log.emit("a", 0.5, "x", n=1)
        clone = pickle.loads(pickle.dumps(log))
        assert clone.records == log.records
        assert EventLog.from_dict(log.as_dict()).records == log.records
