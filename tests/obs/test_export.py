"""Exporters: bit-identical JSONL round-trips and Chrome trace validity."""

from __future__ import annotations

import json
import math

import pytest

from repro.hw.battery import KiBaM
from repro.hw.battery.monitor import BatteryMonitor, BatterySample
from repro.obs import EventLog, MetricsRegistry, SpanRecord
from repro.obs.energy import EnergyLedger
from repro.obs.export import (
    EVENT_COLUMNS,
    LEDGER_COLUMNS,
    SEGMENT_COLUMNS,
    chrome_trace,
    events_to_rows,
    ledger_to_rows,
    metrics_to_rows,
    read_jsonl,
    segments_to_rows,
    write_chrome_trace,
    write_collapsed_stacks,
    write_jsonl,
)
from repro.sim.trace import Segment, TraceRecorder

from tests.conftest import TINY_KIBAM
from tests.obs.chrome_schema import expect_tracks, validate_chrome_trace


def _make_trace() -> TraceRecorder:
    trace = TraceRecorder()
    # Deliberately awkward floats: must survive JSON bit-identically.
    trace.add("node1", 0.0, 1.1, "recv", frequency_mhz=59.0,
              current_ma=32.7185, detail="from host")
    trace.add("node1", 1.1, 1.0999999999999998 + 0.6, "proc",
              frequency_mhz=103.2, current_ma=60.93, detail="fft f0")
    trace.add("node2", 0.3, 2.0 / 3.0, "send", frequency_mhz=59.0,
              current_ma=32.7185, detail="to host")
    return trace


def _make_monitor() -> BatteryMonitor:
    mon = BatteryMonitor(KiBaM(TINY_KIBAM), 60.0, name="node1")
    mon.samples.append(BatterySample(0.0, 1.0, 32.7185, "io"))
    mon.samples.append(BatterySample(60.0, 0.9913 / 3.0, 60.93, "comp"))
    return mon


class TestJsonlRoundTrip:
    def test_segments_reload_bit_identical(self, tmp_path):
        trace = _make_trace()
        path = write_jsonl(tmp_path / "t.jsonl", trace=trace)
        bundle = read_jsonl(path)
        originals = trace.all_segments()
        assert bundle.segments == originals
        for a, b in zip(bundle.segments, originals):
            # Bit-identity, not approximation: exact float equality.
            assert a.start == b.start and a.end == b.end
            assert math.copysign(1.0, a.start) == math.copysign(1.0, b.start)

    def test_battery_samples_reload_bit_identical(self, tmp_path):
        mon = _make_monitor()
        path = write_jsonl(tmp_path / "b.jsonl", monitors={"node1": mon})
        bundle = read_jsonl(path)
        assert bundle.samples == {"node1": list(mon.samples)}
        reloaded = bundle.samples["node1"][1]
        assert reloaded.charge_fraction == 0.9913 / 3.0  # exact

    def test_full_bundle_round_trip(self, tmp_path):
        trace = _make_trace()
        events = EventLog()
        events.emit("frame.emit", 0.0, "host", frame=0)
        events.emit("dvs.switch", 1.1, "node1", from_mhz=59.0, to_mhz=103.2)
        spans = [SpanRecord("fft", 10.0, 10.25, {"frame": 0})]
        metrics = MetricsRegistry()
        metrics.counter("frames.completed").inc(1)
        metrics.histogram("frame.latency_s").observe(4.6)
        path = write_jsonl(
            tmp_path / "all.jsonl",
            trace=trace,
            monitors={"node1": _make_monitor()},
            events=events,
            spans=spans,
            metrics=metrics,
        )
        bundle = read_jsonl(path)
        assert bundle.segments == trace.all_segments()
        assert bundle.events == events.records
        assert bundle.spans == spans
        assert bundle.metrics is not None
        assert bundle.metrics.as_dict() == metrics.as_dict()

    def test_rewrite_is_byte_identical(self, tmp_path):
        """JSONL written from reloaded objects equals the original file."""
        trace = _make_trace()
        p1 = write_jsonl(tmp_path / "a.jsonl", trace=trace,
                         monitors={"node1": _make_monitor()})
        bundle = read_jsonl(p1)
        clone = TraceRecorder()
        for seg in bundle.segments:
            clone._segments.setdefault(seg.actor, []).append(seg)
        mon2 = BatteryMonitor(None, 60.0, name="node1")
        mon2.samples.extend(bundle.samples["node1"])
        p2 = write_jsonl(tmp_path / "b.jsonl", trace=clone,
                         monitors={"node1": mon2})
        assert p1.read_bytes() == p2.read_bytes()

    def test_energy_ledger_round_trips(self, tmp_path):
        led = EnergyLedger()
        led.add("node1", "computation", "fft", 60.93, 0.6)
        led.add("node1", "communication", "link", 32.7185, 1.1)
        path = write_jsonl(tmp_path / "e.jsonl", energy=led)
        bundle = read_jsonl(path)
        assert bundle.energy is not None
        assert bundle.energy.as_dict() == led.as_dict()

    def test_empty_ledger_is_omitted(self, tmp_path):
        path = write_jsonl(tmp_path / "none.jsonl", energy=EnergyLedger())
        assert "energy_ledger" not in path.read_text()
        assert read_jsonl(path).energy is None

    def test_unknown_record_type_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery", "x": 1}\n')
        with pytest.raises(ValueError, match="mystery"):
            read_jsonl(path)


class TestRows:
    def test_segments_to_rows(self):
        rows = segments_to_rows(_make_trace())
        assert len(rows) == 3
        assert {"actor", "start", "end", "activity"} <= rows[0].keys()

    def test_metrics_to_rows(self):
        m = MetricsRegistry()
        m.counter("a").inc(2)
        rows = metrics_to_rows(m)
        assert rows == [{"metric": "a", "kind": "counter", "value": 2}]

    def test_events_to_rows_flattens_payload_to_json(self):
        log = EventLog()
        log.emit("frame.result", 4.6, "host", frame=3, latency_s=4.2)
        rows = events_to_rows(log)
        assert len(rows) == 1
        assert rows[0]["kind"] == "frame.result"
        assert tuple(rows[0].keys()) == EVENT_COLUMNS
        assert json.loads(rows[0]["data"]) == {"frame": 3, "latency_s": 4.2}

    def test_empty_log_yields_zero_rows_but_csv_keeps_header(self, tmp_path):
        """A zero-event run exports a header-only file, not an empty one."""
        from repro.analysis.export import write_rows

        rows = events_to_rows(EventLog())
        assert rows == []
        path = write_rows(rows, tmp_path / "events.csv", columns=EVENT_COLUMNS)
        assert path.read_text().strip() == ",".join(EVENT_COLUMNS)

    def test_column_constants_match_row_shapes(self):
        assert tuple(segments_to_rows(_make_trace())[0].keys()) == SEGMENT_COLUMNS

    def test_ledger_to_rows(self):
        led = EnergyLedger()
        led.add("node2", "idle", "idle", 1.0, 2.0)
        led.add("node1", "computation", "fft", 3600.0, 1.0)
        rows = ledger_to_rows(led)
        assert [r["node"] for r in rows] == ["node1", "node2"]  # sorted
        assert tuple(rows[0].keys()) == LEDGER_COLUMNS
        assert rows[0]["charge_mah"] == 1.0


class TestCollapsedStacks:
    def test_write_one_line_per_stack(self, tmp_path):
        lines = [
            "frame0;host;comm-startup;host->node1 90000",
            "frame0;node1;compute;fft 600000",
        ]
        path = write_collapsed_stacks(tmp_path / "f.folded", lines)
        assert path.read_text().splitlines() == lines

    def test_empty_input_writes_empty_file(self, tmp_path):
        path = write_collapsed_stacks(tmp_path / "empty.folded", [])
        assert path.read_text() == ""


class TestChromeTrace:
    def test_schema_valid_with_per_actor_tracks(self, tmp_path):
        trace = _make_trace()
        events = EventLog()
        events.emit("frame.emit", 0.0, "host", frame=0)
        spans = [SpanRecord("fft", 5.0, 5.5, {})]
        payload = chrome_trace(
            trace=trace,
            events=events,
            spans=spans,
            monitors={"node1": _make_monitor()},
        )
        assert validate_chrome_trace(payload) == []
        assert expect_tracks(payload, ["node1", "node2", "host"]) == []

    def test_written_file_parses_and_validates(self, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", trace=_make_trace())
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"

    def test_slices_are_microseconds(self):
        payload = chrome_trace(trace=_make_trace())
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        first = next(e for e in slices if e["args"]["detail"] == "from host")
        assert first["ts"] == 0.0
        assert first["dur"] == pytest.approx(1.1e6)
