"""Minimal Chrome trace-event schema check.

Validates the subset of the trace-event format the exporter emits,
enough to guarantee chrome://tracing / Perfetto will load the file.
Used by the exporter tests and by the CI smoke job::

    python tests/obs/chrome_schema.py out.json
"""

from __future__ import annotations

import json
import sys
import typing as t

_REQUIRED = {"name", "ph", "pid", "tid"}
_KNOWN_PHASES = {"X", "i", "C", "M"}


def validate_chrome_trace(payload: dict[str, t.Any]) -> list[str]:
    """Return a list of violations (empty = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents must be a non-empty list"]
    names_by_pid: dict[int, set[str]] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        missing = _REQUIRED - ev.keys()
        if missing:
            problems.append(f"{where}: missing {sorted(missing)}")
            continue
        ph = ev["ph"]
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
        if ph in {"X", "i", "C"}:
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if ph == "i" and ev.get("s") not in {"t", "p", "g"}:
            problems.append(f"{where}: instant needs scope s in t/p/g")
        if ph == "M" and ev["name"] == "thread_name":
            names_by_pid.setdefault(ev["pid"], set()).add(
                ev.get("args", {}).get("name", "")
            )
    if not any(names_by_pid.values()):
        problems.append("no thread_name metadata: tracks would be unnamed")
    return problems


def expect_tracks(payload: dict[str, t.Any], names: t.Iterable[str]) -> list[str]:
    """Check that every name in ``names`` has a named track (pid 0)."""
    present = {
        ev.get("args", {}).get("name")
        for ev in payload.get("traceEvents", [])
        if isinstance(ev, dict)
        and ev.get("ph") == "M"
        and ev.get("name") == "thread_name"
        and ev.get("pid") == 0
    }
    return [f"missing track for {n!r}" for n in names if n not in present]


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1], "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    problems = validate_chrome_trace(payload)
    for p in problems:
        print(f"INVALID: {p}", file=sys.stderr)
    if not problems:
        n = len(payload["traceEvents"])
        print(f"{argv[1]}: valid chrome trace ({n} events)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
