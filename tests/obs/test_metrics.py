"""MetricsRegistry: counter/gauge/histogram behaviour and exact merging."""

from __future__ import annotations

import random

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_merge(self):
        a, b = Counter("n"), Counter("n")
        a.inc()
        a.inc(4)
        b.inc(2)
        a.merge(b)
        assert a.value == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("n").inc(-1)


class TestGauge:
    def test_merge_takes_max(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(3.0)
        b.set(5.0)
        a.merge(b)
        assert a.value == 5.0


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("lat")
        for v in [0.1, 0.2, 0.4, 0.8]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["min"] == 0.1 and s["max"] == 0.8
        assert s["mean"] == pytest.approx(0.375)

    def test_percentiles_monotone(self):
        h = Histogram("lat")
        for v in [0.001 * i for i in range(1, 200)]:
            h.observe(v)
        assert h.percentile(50) <= h.percentile(90) <= h.percentile(99)

    def test_merge_is_exact_and_commutative(self):
        rng = random.Random(7)
        values = [rng.uniform(1e-5, 10.0) for _ in range(500)]
        whole = Histogram("x")
        for v in values:
            whole.observe(v)
        a, b = Histogram("x"), Histogram("x")
        for i, v in enumerate(values):
            (a if i % 2 else b).observe(v)
        ab, ba = Histogram("x"), Histogram("x")
        ab.merge(a)
        ab.merge(b)
        ba.merge(b)
        ba.merge(a)
        for merged in (ab, ba):
            assert merged.count == whole.count
            assert merged.total == pytest.approx(whole.total)
            assert merged.buckets == whole.buckets
            assert merged.min == whole.min and merged.max == whole.max

    def test_merge_rejects_differing_bases(self):
        with pytest.raises(ValueError):
            Histogram("x", base=1e-6).merge(Histogram("x", base=1e-3))

    def test_round_trip(self):
        m = MetricsRegistry()
        h = m.histogram("x")
        for v in [0.25, 0.5, 3.0]:
            h.observe(v)
        clone = MetricsRegistry.from_dict(m.as_dict()).histogram("x")
        assert clone.buckets == h.buckets
        assert clone.count == h.count and clone.total == h.total


class TestMetricsRegistry:
    def test_lazy_accessors_reuse_instances(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("b") is m.gauge("b")
        assert m.histogram("c") is m.histogram("c")

    def test_merge_shards_equals_single_registry(self):
        """Per-worker shards aggregate to the serial result exactly."""
        serial = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(4)]
        rng = random.Random(13)
        for i in range(200):
            shard = shards[i % 4]
            serial.counter("frames").inc()
            shard.counter("frames").inc()
            v = rng.uniform(0.0, 5.0)
            serial.histogram("lat").observe(v)
            shard.histogram("lat").observe(v)
            serial.gauge("peak").set(max(serial.gauge("peak").value or 0.0, v))
            shard.gauge("peak").set(max(shard.gauge("peak").value or 0.0, v))
        merged = MetricsRegistry()
        # Any merge order must agree.
        for shard in reversed(shards):
            merged.merge(shard)
        assert merged.counter("frames").value == serial.counter("frames").value
        assert merged.histogram("lat").buckets == serial.histogram("lat").buckets
        assert merged.gauge("peak").value == serial.gauge("peak").value

    def test_round_trip(self):
        m = MetricsRegistry()
        m.counter("a").inc(3)
        m.gauge("b").set(1.5)
        m.histogram("c").observe(0.75)
        clone = MetricsRegistry.from_dict(m.as_dict())
        assert clone.as_dict() == m.as_dict()

    def test_top_histograms_ranked_by_count(self):
        m = MetricsRegistry()
        for _ in range(3):
            m.histogram("busy").observe(1.0)
        m.histogram("quiet").observe(1.0)
        names = [h.name for h in m.top_histograms(2)]
        assert names == ["busy", "quiet"]

    def test_as_rows_sorted_and_typed(self):
        m = MetricsRegistry()
        m.counter("z").inc()
        m.counter("a").inc()
        m.histogram("h").observe(0.5)
        rows = m.as_rows()
        counters = [r["metric"] for r in rows if r["kind"] == "counter"]
        assert counters == ["a", "z"]
        hist_rows = [r for r in rows if r["kind"] == "histogram"]
        assert hist_rows and "n=1" in hist_rows[0]["value"]
