"""Span profiling: context-manager timing into sinks and histograms."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, Span, SpanRecord, Telemetry


class TestSpanRecord:
    def test_round_trip_and_duration(self):
        rec = SpanRecord("fft", 1.0, 1.5, {"frame": 3})
        assert rec.duration_s == pytest.approx(0.5)
        assert SpanRecord.from_dict(rec.as_dict()) == rec


class TestSpan:
    def test_records_into_sink_and_histogram(self):
        sink: list[SpanRecord] = []
        metrics = MetricsRegistry()
        with Span("fft", {"frame": 1}, sink, metrics):
            pass
        assert len(sink) == 1
        rec = sink[0]
        assert rec.name == "fft" and rec.tags == {"frame": 1}
        assert rec.end_s >= rec.start_s
        hist = metrics.histogram("span.fft")
        assert hist.count == 1

    def test_records_even_when_body_raises(self):
        sink: list[SpanRecord] = []
        with pytest.raises(RuntimeError):
            with Span("boom", {}, sink, None):
                raise RuntimeError("x")
        assert len(sink) == 1

    def test_no_sinks_is_a_noop(self):
        with Span("idle", {}, None, None):
            pass  # must not raise; skips clock reads entirely


class TestTelemetryFacade:
    def test_span_helper_feeds_both_sinks(self):
        obs = Telemetry()
        with obs.span("detect", frame=0):
            pass
        assert [s.name for s in obs.spans] == ["detect"]
        assert obs.metrics.histogram("span.detect").count == 1

    def test_emit_delegates_to_event_log(self):
        obs = Telemetry()
        obs.emit("frame.emit", 0.0, "host", frame=0)
        assert obs.events.counts_by_kind() == {"frame.emit": 1}

    def test_round_trip(self):
        obs = Telemetry()
        obs.emit("a", 1.0, "x", n=2)
        with obs.span("fft", frame=1):
            pass
        obs.metrics.counter("c").inc(4)
        clone = Telemetry.from_dict(obs.as_dict())
        assert clone.as_dict() == obs.as_dict()
