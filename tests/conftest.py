"""Shared fixtures.

Engine-behaviour tests use a deliberately tiny battery so simulated
discharge runs finish in milliseconds of wall time; the full
paper-scale runs live in the integration tests and benchmarks.
"""

from __future__ import annotations

import pytest

from repro.hw.battery import KiBaM, KiBaMParameters, LinearBattery
from repro.hw.dvs import SA1100_TABLE
from repro.hw.power import PAPER_POWER_MODEL
from repro.sim import Simulator


#: Small cell with paper-like dynamics: dies after roughly 6-10 minutes
#: of simulated full-speed computation.
TINY_KIBAM = KiBaMParameters(capacity_mah=25.0, c=0.22628, k_prime_per_hour=0.42188)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def tiny_battery() -> KiBaM:
    return KiBaM(TINY_KIBAM)


def tiny_battery_factory() -> KiBaM:
    """Picklable/importable factory for engine configs."""
    return KiBaM(TINY_KIBAM)


def tiny_linear_factory() -> LinearBattery:
    return LinearBattery(25.0)


@pytest.fixture
def power_model():
    return PAPER_POWER_MODEL


@pytest.fixture
def table():
    return SA1100_TABLE
