"""Full reproduction report."""

import pytest

from repro.analysis.report import build_report, write_report
from repro.core.experiments import run_paper_suite
from tests.conftest import tiny_battery_factory


@pytest.fixture(scope="module")
def report_text():
    runs = run_paper_suite(
        ["1", "2", "2C"],
        battery_factory=tiny_battery_factory,
        monitor_interval_s=60.0,
    )
    return build_report(runs, battery_factory=tiny_battery_factory)


class TestBuildReport:
    def test_all_figure_sections_present(self, report_text):
        for section in (
            "Fig. 2", "Fig. 3", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10",
        ):
            assert f"## {section}" in report_text

    def test_energy_breakdowns_for_pipeline_runs(self, report_text):
        assert "Energy breakdown — experiment (2)" in report_text
        assert "Energy breakdown — experiment (2C)" in report_text

    def test_raw_metrics_table(self, report_text):
        assert "## Raw metrics" in report_text
        assert "| 2C |" in report_text

    def test_markdown_code_fences_balanced(self, report_text):
        assert report_text.count("```") % 2 == 0

    def test_write_report(self, tmp_path, report_text):
        runs = run_paper_suite(
            ["1"], battery_factory=tiny_battery_factory, monitor_interval_s=60.0
        )
        path = write_report(
            tmp_path / "r.md", runs=runs, battery_factory=tiny_battery_factory
        )
        assert path.read_text().startswith("# Reproduction report")
