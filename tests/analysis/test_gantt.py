"""Gantt rendering of traces."""

from repro.analysis.gantt import render_gantt
from repro.sim import TraceRecorder


def make_trace():
    t = TraceRecorder()
    t.add("node1", 0.0, 1.1, "recv")
    t.add("node1", 1.1, 2.2, "proc")
    t.add("node1", 2.2, 2.3, "send")
    t.add("node2", 2.2, 2.3, "recv")
    return t


class TestRenderGantt:
    def test_rows_per_actor(self):
        out = render_gantt(make_trace(), width=46)
        lines = out.splitlines()
        assert lines[0].startswith("node1")
        assert lines[1].startswith("node2")

    def test_glyphs_by_activity(self):
        out = render_gantt(make_trace(), width=46)
        row1 = out.splitlines()[0]
        assert "R" in row1 and "P" in row1 and "S" in row1

    def test_overlap_alignment(self):
        """Node1's SEND and Node2's RECV occupy the same columns (Fig. 3)."""
        out = render_gantt(make_trace(), width=46)
        r1, r2 = out.splitlines()[:2]
        s_cols = {i for i, ch in enumerate(r1) if ch == "S"}
        r_cols = {i for i, ch in enumerate(r2) if ch == "R"}
        assert s_cols & r_cols

    def test_legend_lists_used_activities(self):
        out = render_gantt(make_trace())
        legend = out.splitlines()[-1]
        for activity in ("recv", "proc", "send"):
            assert activity in legend

    def test_window_selection(self):
        out = render_gantt(make_trace(), start_s=1.1, end_s=2.2, width=20)
        row1 = out.splitlines()[0]
        assert "R" not in row1  # recv is outside the window
        assert "P" in row1

    def test_deadline_ruler(self):
        out = render_gantt(make_trace(), deadline_s=1.15, width=46)
        ruler = out.splitlines()[0]
        assert ruler.count("|") >= 2

    def test_custom_glyphs(self):
        out = render_gantt(make_trace(), glyphs={"proc": "@"})
        assert "@" in out

    def test_empty_trace(self):
        assert "(empty trace)" in render_gantt(TraceRecorder())

    def test_actor_order_respected(self):
        out = render_gantt(make_trace(), actors=["node2", "node1"])
        lines = out.splitlines()
        assert lines[0].startswith("node2")
