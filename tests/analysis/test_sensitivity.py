"""Calibration sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    _perturbed,
    evaluate_scenario,
    sensitivity_sweep,
)
from repro.errors import ConfigurationError
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS
from repro.hw.power import PAPER_POWER_MODEL


class TestPerturbation:
    def test_capacity_scales(self):
        battery, _ = _perturbed("capacity", 1.1)
        assert battery.capacity_mah == pytest.approx(
            PAPER_KIBAM_PARAMETERS.capacity_mah * 1.1
        )

    def test_io_activity_changes_power_model_only(self):
        battery, power = _perturbed("io_activity", 0.9)
        assert battery is PAPER_KIBAM_PARAMETERS
        assert power.io_activity == pytest.approx(
            PAPER_POWER_MODEL.io_activity * 0.9
        )

    def test_c_clamped_below_one(self):
        battery, _ = _perturbed("c", 10.0)
        assert battery.c <= 0.95

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            _perturbed("voltage", 1.1)


class TestScenario:
    def test_nominal_matches_paper_shape(self):
        outcome = evaluate_scenario(
            "nominal", PAPER_KIBAM_PARAMETERS, PAPER_POWER_MODEL
        )
        assert outcome.ordering_holds
        assert outcome.baseline_h == pytest.approx(6.08, abs=0.1)
        assert 1.1 < outcome.partitioning_rnorm < 1.3
        assert 1.5 < outcome.rotation_rnorm < 1.75

    def test_sweep_shape(self):
        outcomes = sensitivity_sweep(rel_changes=(0.05,))
        # nominal + one change per parameter
        assert len(outcomes) == 1 + 4
        assert outcomes[0].label == "nominal"
        assert all("+" in o.label or o.label == "nominal" for o in outcomes)
