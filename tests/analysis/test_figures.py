"""Figure generators: structured rows behind each paper artifact."""

import pytest

from repro.analysis.figures import (
    figure6_performance_profile,
    figure7_power_profile,
    figure8_partitioning,
    figure10_results,
)
from repro.core.experiments import run_paper_suite
from tests.conftest import tiny_battery_factory


class TestFigure6:
    def test_rows_cover_input_blocks_total(self):
        fig = figure6_performance_profile()
        stages = [r["stage"] for r in fig.rows]
        assert stages[0].startswith("input")
        assert "target_detection" in stages
        assert stages[-1].startswith("TOTAL")

    def test_input_transfer_is_paper_recv_time(self):
        fig = figure6_performance_profile()
        assert fig.rows[0]["transfer_s"] == pytest.approx(1.1, abs=0.01)

    def test_total_proc_is_1_1s(self):
        fig = figure6_performance_profile()
        assert fig.rows[-1]["proc_s_at_206MHz"] == pytest.approx(1.1)

    def test_text_renders(self):
        assert "Fig. 6" in figure6_performance_profile().text


class TestFigure7:
    def test_eleven_rows(self):
        assert len(figure7_power_profile().rows) == 11

    def test_quoted_anchors_present(self):
        rows = figure7_power_profile().rows
        first, last = rows[0], rows[-1]
        assert first["communication_ma"] == pytest.approx(40.0)
        assert last["communication_ma"] == pytest.approx(110.0)
        assert last["computation_ma"] == pytest.approx(130.0)

    def test_text_renders(self):
        assert "Fig. 7" in figure7_power_profile().text


class TestFigure8:
    def test_three_schemes(self):
        assert len(figure8_partitioning().rows) == 3

    def test_scheme1_row(self):
        row = figure8_partitioning().rows[0]
        assert row["node1_mhz"] == 59.0
        assert row["node2_mhz"] == 103.2
        assert row["feasible"]

    def test_scheme3_infeasible_row(self):
        row = figure8_partitioning().rows[2]
        assert not row["feasible"]


class TestDischargeCurves:
    def test_curves_per_node(self):
        from repro.analysis.figures import figure_discharge_curves
        from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment

        run = run_experiment(
            PAPER_EXPERIMENTS["2"],
            battery_factory=tiny_battery_factory,
            monitor_interval_s=30.0,
        )
        fig = figure_discharge_curves(run)
        nodes = {r["node"] for r in fig.rows}
        assert nodes == {"node1", "node2"}
        # Fractions are non-increasing per node.
        for node in nodes:
            fracs = [r["charge_fraction"] for r in fig.rows if r["node"] == node]
            assert all(b <= a + 1e-9 for a, b in zip(fracs, fracs[1:]))
        assert "node1 discharge" in fig.text

    def test_requires_monitors(self):
        from repro.analysis.figures import figure_discharge_curves
        from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
        from repro.errors import ConfigurationError

        run = run_experiment(
            PAPER_EXPERIMENTS["1"],
            battery_factory=tiny_battery_factory,
            max_frames=3,
        )
        with pytest.raises(ConfigurationError):
            figure_discharge_curves(run)


class TestFigure10:
    @pytest.fixture(scope="class")
    def runs(self):
        return run_paper_suite(
            ["1", "1A", "2", "0A"], battery_factory=tiny_battery_factory
        )

    def test_excludes_no_io_experiments(self, runs):
        fig = figure10_results(runs)
        labels = [r["experiment"] for r in fig.rows]
        assert "0A" not in labels
        assert labels == ["1", "1A", "2"]

    def test_rows_carry_paper_reference(self, runs):
        fig = figure10_results(runs)
        baseline = fig.rows[0]
        assert baseline["paper_T_hours"] == 6.13
        assert baseline["Rnorm_percent"] == pytest.approx(100.0)

    def test_text_has_both_charts(self, runs):
        text = figure10_results(runs).text
        assert "absolute battery life" in text
        assert "normalized battery life" in text
