"""CSV/JSON exports."""

import json

import numpy as np
import pytest

from repro.analysis.export import rows_to_csv, rows_to_json, write_rows


ROWS = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}]


class TestCSV:
    def test_header_and_rows(self):
        text = rows_to_csv(ROWS)
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert len(lines) == 3

    def test_column_selection(self):
        text = rows_to_csv(ROWS, columns=["b"])
        assert text.strip().splitlines()[0] == "b"

    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_empty_with_columns_keeps_header(self):
        # A zero-event export must stay a parseable CSV, not vanish.
        text = rows_to_csv([], columns=["kind", "ts", "actor"])
        assert text.strip() == "kind,ts,actor"

    def test_write_rows_empty_csv_with_columns(self, tmp_path):
        path = write_rows([], tmp_path / "empty.csv", columns=["a", "b"])
        assert path.read_text().strip() == "a,b"


class TestJSON:
    def test_roundtrip(self):
        assert json.loads(rows_to_json(ROWS)) == ROWS

    def test_numpy_scalars_coerced(self):
        rows = [{"x": np.float64(1.5), "n": np.int64(3)}]
        assert json.loads(rows_to_json(rows)) == [{"x": 1.5, "n": 3}]


class TestWriteRows:
    def test_csv_suffix(self, tmp_path):
        path = write_rows(ROWS, tmp_path / "out.csv")
        assert path.read_text().startswith("a,b")

    def test_json_suffix(self, tmp_path):
        path = write_rows(ROWS, tmp_path / "out.json")
        assert json.loads(path.read_text()) == ROWS

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_rows(ROWS, tmp_path / "out.xlsx")


class TestLaTeX:
    def test_tabular_structure(self):
        from repro.analysis.export import rows_to_latex

        tex = rows_to_latex(ROWS)
        assert tex.startswith("\\begin{tabular}{ll}")
        assert "\\toprule" in tex and "\\bottomrule" in tex
        assert "1 & 2.50 \\\\" in tex

    def test_table_environment_with_caption(self):
        from repro.analysis.export import rows_to_latex

        tex = rows_to_latex(ROWS, caption="Results", label="tab:x")
        assert "\\begin{table}[t]" in tex
        assert "\\caption{Results}" in tex
        assert "\\label{tab:x}" in tex

    def test_escaping(self):
        from repro.analysis.export import rows_to_latex

        tex = rows_to_latex([{"name": "a_b & 50%"}])
        assert "a\\_b \\& 50\\%" in tex

    def test_none_and_bool(self):
        from repro.analysis.export import rows_to_latex

        tex = rows_to_latex([{"a": None, "b": True}])
        assert "-- & yes" in tex

    def test_header_override(self):
        from repro.analysis.export import rows_to_latex

        tex = rows_to_latex(ROWS, headers={"a": "Alpha"})
        assert "Alpha & b" in tex

    def test_empty(self):
        from repro.analysis.export import rows_to_latex

        assert rows_to_latex([]).startswith("%")

    def test_write_tex_suffix(self, tmp_path):
        from repro.analysis.export import write_rows

        path = write_rows(ROWS, tmp_path / "t.tex")
        assert path.read_text().startswith("\\begin{tabular}")
