"""ASCII charts."""

import pytest

from repro.analysis.charts import bar_chart, line_plot


class TestBarChart:
    def test_longest_bar_full_width(self):
        out = bar_chart([("a", 2.0), ("b", 1.0)], width=10)
        rows = out.splitlines()
        assert "#" * 10 in rows[0]
        assert "#" * 5 in rows[1]
        assert "#" * 6 not in rows[1]

    def test_values_printed(self):
        out = bar_chart([("x", 6.13)], unit=" h")
        assert "6.13 h" in out

    def test_annotations(self):
        out = bar_chart([("2C", 8.9)], annotations={"2C": "Rnorm 145%"})
        assert "Rnorm 145%" in out

    def test_title(self):
        out = bar_chart([("a", 1.0)], title="Fig 10")
        assert out.splitlines()[0] == "Fig 10"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([("a", -1.0)])

    def test_empty(self):
        assert "(no data)" in bar_chart([])

    def test_all_zero_no_crash(self):
        out = bar_chart([("a", 0.0)])
        assert "0.00" in out


class TestLinePlot:
    def test_grid_dimensions(self):
        out = line_plot([(0, 0), (1, 1)], width=20, height=5)
        rows = [ln for ln in out.splitlines() if ln.startswith("|")]
        assert len(rows) == 5

    def test_axis_ranges_annotated(self):
        out = line_plot([(0, 10), (100, 50)], x_label="t", y_label="mAh")
        assert "mAh" in out and "t [0 .. 100]" in out

    def test_points_plotted(self):
        out = line_plot([(0, 0), (1, 1), (2, 4)])
        assert out.count("*") >= 3

    def test_monotone_series_shape(self):
        pts = [(i, i * i) for i in range(10)]
        out = line_plot(pts, width=30, height=8)
        rows = [ln[1:] for ln in out.splitlines() if ln.startswith("|")]
        first_star_cols = [row.index("*") for row in rows if "*" in row]
        # Higher rows (larger y) appear at larger x for a rising series.
        assert first_star_cols == sorted(first_star_cols, reverse=True)

    def test_too_few_points(self):
        assert "need >= 2" in line_plot([(0, 0)])

    def test_constant_series_no_crash(self):
        out = line_plot([(0, 5.0), (1, 5.0), (2, 5.0)])
        assert "*" in out
