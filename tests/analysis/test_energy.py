"""Energy breakdown analysis."""

import pytest

from repro.analysis.energy import energy_breakdown_rows, render_energy_breakdown
from repro.core.experiments import PAPER_EXPERIMENTS, run_experiment
from repro.errors import ConfigurationError
from tests.conftest import tiny_battery_factory


@pytest.fixture(scope="module")
def partitioned_result():
    run = run_experiment(
        PAPER_EXPERIMENTS["2"],
        battery_factory=tiny_battery_factory,
        monitor_interval_s=30.0,
    )
    return run.pipeline


class TestRows:
    def test_one_row_per_node(self, partitioned_result):
        rows = energy_breakdown_rows(partitioned_result)
        assert {r["node"] for r in rows} == {"node1", "node2"}

    def test_charge_shares_sum_to_one(self, partitioned_result):
        for row in energy_breakdown_rows(partitioned_result):
            total = (
                row["computation_charge_pct"]
                + row["communication_charge_pct"]
                + row["idle_charge_pct"]
            )
            assert total == pytest.approx(100.0, abs=0.5)

    def test_node2_compute_dominated(self, partitioned_result):
        """§4.4: 'the computation always dominates' — on the heavy node."""
        rows = {r["node"]: r for r in energy_breakdown_rows(partitioned_result)}
        assert rows["node2"]["computation_charge_pct"] > 60.0
        # Node1's frame is mostly I/O time.
        assert (
            rows["node1"]["communication_time_pct"]
            > rows["node2"]["communication_time_pct"]
        )

    def test_survivor_strands_charge(self, partitioned_result):
        """§6.4: when Node2 fails, 'plenty of energy still remains' in Node1."""
        rows = {r["node"]: r for r in energy_breakdown_rows(partitioned_result)}
        assert rows["node2"]["died"] is True
        assert rows["node1"]["died"] is False
        assert rows["node1"]["stranded_mAh"] > rows["node2"]["stranded_mAh"]

    def test_requires_monitors(self):
        run = run_experiment(
            PAPER_EXPERIMENTS["1"],
            battery_factory=tiny_battery_factory,
            max_frames=3,
        )
        with pytest.raises(ConfigurationError):
            energy_breakdown_rows(run.pipeline)


class TestRender:
    def test_renders_table(self, partitioned_result):
        text = render_energy_breakdown(partitioned_result)
        assert "energy breakdown" in text
        assert "node1" in text and "node2" in text
        assert "stranded" in text
