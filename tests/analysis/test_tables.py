"""ASCII table rendering."""

from repro.analysis.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = out.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4

    def test_numeric_right_aligned(self):
        out = format_table([{"n": 1}, {"n": 100}])
        rows = out.splitlines()[2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")

    def test_text_left_aligned(self):
        out = format_table([{"s": "ab"}, {"s": "abcdef"}])
        rows = out.splitlines()[2:]
        assert rows[0].startswith("ab")

    def test_missing_values_dash(self):
        out = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert "-" in out.splitlines()[3]

    def test_float_format(self):
        out = format_table([{"x": 3.14159}], float_fmt=".1f")
        assert "3.1" in out and "3.14" not in out

    def test_bool_rendering(self):
        out = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in out and "no" in out

    def test_headers_override(self):
        out = format_table([{"t": 1.0}], headers={"t": "T (hours)"})
        assert "T (hours)" in out

    def test_title(self):
        out = format_table([{"a": 1}], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_column_selection_and_order(self):
        out = format_table([{"a": 1, "b": 2, "c": 3}], columns=["c", "a"])
        head = out.splitlines()[0]
        assert head.index("c") < head.index("a")
        assert "b" not in head

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])
