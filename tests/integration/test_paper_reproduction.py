"""Full-scale reproduction of the paper's experiments (§6, Fig. 10).

These run the calibrated battery to exhaustion — seconds of wall time
per experiment — and assert the *shape* of the paper's results: who
wins, approximate factors, and where the orderings fall. Absolute
tolerances reflect that our substrate is a calibrated simulator, not
the authors' testbed (see EXPERIMENTS.md).
"""

import pytest

from repro.core.experiments import run_paper_suite, summarize_runs


@pytest.fixture(scope="module")
def runs():
    return run_paper_suite()  # all eight experiments, paper battery


@pytest.fixture(scope="module")
def metrics(runs):
    return {m.label: m for m in summarize_runs(runs)}


class TestAbsoluteLifetimes:
    """T(N) within 12% of the paper's measurement for every experiment."""

    @pytest.mark.parametrize(
        "label", ["0A", "0B", "1", "1A", "2", "2A", "2B", "2C"]
    )
    def test_lifetime_close_to_paper(self, runs, label):
        run = runs[label]
        assert run.t_hours == pytest.approx(run.spec.paper.t_hours, rel=0.12)

    @pytest.mark.parametrize(
        "label", ["0A", "0B", "1", "1A", "2", "2A", "2B", "2C"]
    )
    def test_frames_close_to_paper(self, runs, label):
        run = runs[label]
        assert run.frames == pytest.approx(run.spec.paper.frames, rel=0.12)


class TestCalibrationAnchors:
    """The five fitted anchors must land tighter than the predictions."""

    @pytest.mark.parametrize("label,target", [("0A", 3.4), ("0B", 12.9), ("1", 6.13), ("1A", 7.6), ("2", 14.1)])
    def test_anchor(self, runs, label, target):
        assert runs[label].t_hours == pytest.approx(target, rel=0.06)


class TestPaperNarrative:
    """The qualitative findings, one per paper claim."""

    def test_0b_half_speed_doubles_work(self, runs):
        """§6.1: 'At the half clock rate, the Itsy computer can complete
        twice the workload' (and then some, via the battery)."""
        assert runs["0B"].frames >= 1.8 * runs["0A"].frames

    def test_baseline_io_costs_workload(self, runs):
        """§6.2: with I/O the node completes ~17% fewer frames than 0A."""
        loss = 1.0 - runs["1"].frames / runs["0A"].frames
        assert loss == pytest.approx(0.17, abs=0.07)

    def test_1a_recovery_effect_beats_0a_workload(self, runs):
        """§6.3: F(1A) > F(0A) — the battery recovery effect at work."""
        assert runs["1A"].frames > runs["0A"].frames

    def test_partitioning_more_than_doubles_absolute_life(self, runs):
        """§6.4: 'the battery life is more than doubled'."""
        assert runs["2"].t_hours > 2.0 * runs["1"].t_hours

    def test_partitioning_normalized_gain_modest(self, metrics):
        """§6.4: Rnorm(2) ~ 115% — far less than the 2x absolute gain."""
        assert 1.05 < metrics["2"].rnorm < 1.30

    def test_distributed_dvs_less_efficient_than_single_node_dvs(self, metrics):
        """§6.4: 'Distributed DVS is even less efficient than (1A)'."""
        assert metrics["2"].rnorm < metrics["1A"].rnorm

    def test_2a_improves_marginally_over_2(self, metrics):
        """§6.5: 'only 3% more battery capacity' — a small positive gain."""
        gain = metrics["2A"].rnorm - metrics["2"].rnorm
        assert 0.0 < gain < 0.10

    def test_node2_fails_first_in_partitioned_runs(self, runs):
        """§6.4: Node2 always fails first (unbalanced load)."""
        for label in ("2", "2A"):
            deaths = runs[label].death_times_s
            assert "node2" in deaths and "node1" not in deaths

    def test_recovery_keeps_system_alive_after_first_failure(self, runs):
        """§6.6: Node1 picks up ~5K more frames after Node2 dies."""
        run = runs["2B"]
        assert run.pipeline.migrations
        first_death = min(run.death_times_s.values())
        extra_frames = (run.pipeline.last_result_s - first_death) / 2.3
        assert extra_frames == pytest.approx(5000, rel=0.35)

    def test_recovery_beats_plain_partitioning(self, metrics):
        """§6.6: (2B) outlasts (2) and (2A)."""
        assert metrics["2B"].rnorm > metrics["2A"].rnorm > metrics["2"].rnorm

    def test_rotation_is_best(self, metrics):
        """§6.7: node rotation 'is the best result among all techniques'."""
        others = [metrics[lb].rnorm for lb in ("1", "1A", "2", "2A", "2B")]
        assert metrics["2C"].rnorm > max(others)

    def test_rotation_rnorm_band(self, metrics):
        """Paper: 145%. Our ideal rotation overshoots; assert the band."""
        assert 1.35 <= metrics["2C"].rnorm <= 1.80

    def test_rotation_balances_discharge(self, runs):
        """§6.7: with balanced load, both batteries exhaust together."""
        deaths = sorted(runs["2C"].death_times_s.values())
        if len(deaths) == 2:
            assert (deaths[1] - deaths[0]) / deaths[1] < 0.10

    def test_full_rnorm_ordering_matches_paper(self, metrics):
        """Fig. 10's complete ordering: 1 < 2 < 2A < 1A < 2B < 2C."""
        order = ["1", "2", "2A", "1A", "2B", "2C"]
        values = [metrics[lb].rnorm for lb in order]
        assert values == sorted(values)


class TestRegressionLock:
    """Exact deterministic outputs, locked.

    The simulator is deterministic, so these counts only move when the
    models change. A failure here means behaviour drifted — update the
    numbers only for an *intentional* recalibration, alongside
    DESIGN.md/EXPERIMENTS.md.
    """

    LOCKED_FRAMES = {
        "0A": 11218,
        "0B": 20507,
        "1": 9509,
        "1A": 12467,
        "2": 22307,
        "2A": 22711,
        "2B": 25724,
        "2C": 30653,
    }

    @pytest.mark.parametrize("label", sorted(LOCKED_FRAMES))
    def test_frame_counts_locked(self, runs, label):
        assert runs[label].frames == self.LOCKED_FRAMES[label]


class TestThroughputConstraint:
    """Every I/O-bound experiment must hold the frame delay D."""

    @pytest.mark.parametrize("label", ["1", "1A", "2", "2A", "2C"])
    def test_mean_result_period_is_d(self, runs, label):
        period = runs[label].pipeline.mean_result_period_s()
        assert period == pytest.approx(2.3, rel=1e-3)
