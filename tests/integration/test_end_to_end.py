"""End-to-end workflow: real ATR -> measured profile -> simulated pipeline.

Exercises the whole public API the way a downstream user would: run the
actual recognizer, derive a task profile from it, partition that
profile, pick operating points, and simulate the resulting distributed
system on batteries.
"""

import numpy as np
import pytest

from repro import (
    ATRPipeline,
    DVSDuringIOPolicy,
    PAPER_LINK_TIMING,
    Partition,
    PipelineConfig,
    PipelineEngine,
    SA1100_TABLE,
    SceneSpec,
    SlowestFeasiblePolicy,
    analyze_partitions,
    generate_scene,
    measure_profile,
    select_best,
)
from repro.pipeline.schedule import plan_node
from tests.conftest import tiny_battery_factory


class TestMeasuredProfileWorkflow:
    @pytest.fixture(scope="class")
    def profile(self):
        return measure_profile(repeats=1, itsy_total_seconds=1.1)

    def test_profile_partitionable(self, profile):
        analyses = analyze_partitions(
            profile, 2, PAPER_LINK_TIMING, 2.3, SA1100_TABLE
        )
        assert analyses
        # At least the all-light partitions must be feasible at D=2.3
        # if the single-node case is (payloads may differ from paper).
        feasible = [a for a in analyses if a.feasible]
        if feasible:
            best = select_best(analyses)
            assert best.feasible

    def test_simulation_runs_on_measured_profile(self, profile):
        partition = Partition(profile)
        plans = [
            plan_node(a, PAPER_LINK_TIMING, 4.0, SA1100_TABLE)
            for a in partition.assignments
        ]
        roles = DVSDuringIOPolicy(SlowestFeasiblePolicy()).role_configs(
            plans, SA1100_TABLE
        )
        config = PipelineConfig(
            partition=partition,
            roles=roles,
            node_names=("node1",),
            battery_factory=tiny_battery_factory,
            deadline_s=4.0,
            max_frames=5,
            monitor_interval_s=None,
        )
        result = PipelineEngine(config).run()
        assert result.frames_completed == 5


class TestMeasuredWorkloadTrace:
    def test_recognizer_cost_trace_drives_the_pipeline(self):
        """Full bridge: per-frame recognition cost (from actual ROI
        counts on generated scenes) becomes a TraceWorkload the
        simulated pipeline replays."""
        import numpy as np

        from repro.apps.atr.blocks import detect_targets
        from repro.pipeline.engine import PipelineEngine
        from repro.pipeline.workload import TraceWorkload
        from tests.pipeline.test_engine import make_config

        rng = np.random.default_rng(31)
        spec = SceneSpec(size=64, n_targets=1, clutter_sigma=0.3)
        # Correlation work scales with the ROIs the detector emits:
        # an empty frame skips the FFT blocks (~0.42 of the chain).
        scales = []
        for _ in range(24):
            scene = generate_scene(spec, rng)
            n_rois = len(detect_targets(scene.image, max_regions=2))
            scales.append(0.58 + 0.42 * min(n_rois, 2))
        assert len(set(scales)) > 1, "trace should actually vary"

        cfg = make_config(cuts=(1,), max_frames=len(scales))
        cfg.workload = TraceWorkload(scales, wrap=True)
        cfg.adaptive_workload_dvs = True
        result = PipelineEngine(cfg).run()
        assert result.frames_completed == len(scales)
        # Adaptive DVS absorbs the measured variation without misses.
        assert result.late_results == 0

    def test_trace_replay_is_deterministic(self):
        from repro.pipeline.engine import PipelineEngine
        from repro.pipeline.workload import TraceWorkload
        from tests.pipeline.test_engine import make_config

        def run():
            cfg = make_config(cuts=(1,), max_frames=12)
            cfg.workload = TraceWorkload([0.8, 1.0, 1.2])
            return PipelineEngine(cfg).run()

        assert run().result_times_s == run().result_times_s


class TestRecognitionQuality:
    def test_recognizer_works_on_stream_of_frames(self):
        """Sustained recognition over a frame stream (the host's view)."""
        rng = np.random.default_rng(123)
        pipe = ATRPipeline()
        spec = SceneSpec(size=64, n_targets=1, clutter_sigma=0.3)
        correct = 0
        for frame_id in range(20):
            scene = generate_scene(spec, rng)
            result = pipe.run(scene, frame_id=frame_id)
            assert result.frame_id == frame_id
            correct += pipe.score_against_truth(scene, result)
        assert correct / 20 >= 0.75
