"""Exception hierarchy contract."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SimulationError,
    errors.ScheduleError,
    errors.DeadlineMissError,
    errors.InfeasiblePartitionError,
    errors.BatteryError,
    errors.LinkError,
    errors.CalibrationError,
    errors.ConfigurationError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_deadline_miss_is_schedule_error():
    assert issubclass(errors.DeadlineMissError, errors.ScheduleError)


def test_deadline_miss_carries_context():
    err = errors.DeadlineMissError("node2", required=2.5, deadline=2.3)
    assert err.node == "node2"
    assert err.required == 2.5
    assert err.deadline == 2.3
    assert "node2" in str(err)
    assert "2.300" in str(err)


def test_infeasible_partition_carries_required_mhz():
    err = errors.InfeasiblePartitionError("too fast", required_mhz=380.0)
    assert err.required_mhz == 380.0


def test_repro_error_catchable_as_single_clause():
    with pytest.raises(errors.ReproError):
        raise errors.LinkError("boom")
