"""Multi-scale, rotation-robust matching."""

import numpy as np
import pytest

from repro.apps.atr.matching import MultiScaleATR, expand_bank, match_region
from repro.apps.atr.blocks import detect_targets
from repro.apps.atr.image import FOCAL_PIXELS
from repro.apps.atr.reference import ATRPipeline
from repro.apps.atr.templates import TEMPLATE_BANK


def scene_with(template, scale=1.0, turns=0, size=96, amplitude=3.0, noise=0.05, seed=0):
    """A clean scene containing one transformed silhouette."""
    rng = np.random.default_rng(seed)
    img = rng.normal(0.0, noise, (size, size))
    mask = template.mask
    if scale != 1.0:
        from repro.apps.atr.matching import _rescale

        mask = _rescale(mask, scale)
    mask = np.rot90(mask, turns)
    r, c = size // 3, size // 3
    img[r : r + mask.shape[0], c : c + mask.shape[1]] += amplitude * mask
    return img


class TestExpandBank:
    def test_variant_count(self):
        bank = expand_bank(scales=(0.8, 1.0), quarter_turns=(0, 1))
        assert len(bank) == len(TEMPLATE_BANK) * 2 * 2

    def test_rotation_exactness(self):
        bank = expand_bank(scales=(1.0,), quarter_turns=(0, 2))
        by_key = {(v.base.name, v.quarter_turns): v for v in bank}
        tank0 = by_key[("tank", 0)]
        tank180 = by_key[("tank", 2)]
        assert np.array_equal(np.rot90(tank0.mask, 2), tank180.mask)

    def test_invalid_turns_rejected(self):
        with pytest.raises(ValueError):
            expand_bank(quarter_turns=(4,))

    def test_names_unique(self):
        bank = expand_bank()
        names = [v.name for v in bank]
        assert len(set(names)) == len(names)

    def test_normalized_unit_energy(self):
        for variant in expand_bank(scales=(1.0,), quarter_turns=(0,)):
            n = variant.normalized()
            assert np.sqrt((n * n).sum()) == pytest.approx(1.0)


class TestMatchRegion:
    @pytest.mark.parametrize("turns", [0, 1, 2, 3])
    def test_recovers_rotation(self, turns):
        template = TEMPLATE_BANK[0]  # tank: asymmetric enough
        img = scene_with(template, turns=turns, seed=3)
        rois = detect_targets(img)
        assert rois
        variants = expand_bank(scales=(1.0,))
        best, score = match_region(rois[0], variants)
        assert best.base.name == template.name
        # Rotations of 0/180 can alias for near-symmetric shapes; the
        # heading must at least match modulo the shape's symmetry.
        assert best.quarter_turns % 2 == turns % 2

    @pytest.mark.parametrize("scale", [0.8, 1.25])
    def test_recovers_scale(self, scale):
        template = TEMPLATE_BANK[2]  # aircraft: distinctive at scale
        img = scene_with(template, scale=scale, seed=4)
        rois = detect_targets(img)
        assert rois
        variants = expand_bank(scales=(0.8, 1.0, 1.25), quarter_turns=(0,))
        best, _ = match_region(rois[0], variants)
        assert best.base.name == template.name
        assert best.scale == scale


class TestMultiScaleATR:
    def test_rotated_target_beats_plain_recognizer(self):
        """A 90-degree target defeats the plain bank but not this one."""
        template = TEMPLATE_BANK[1]  # truck: clearly asymmetric
        img = scene_with(template, turns=1, seed=7)

        plain = ATRPipeline().run(img)
        multi = MultiScaleATR(scales=(1.0,)).run(img)

        assert multi and multi[0]["template"] == template.name
        assert multi[0]["heading_deg"] == 90
        if plain.detections:
            # If the plain recognizer answers at all, the multi-variant
            # correlation score must dominate its best guess.
            assert multi[0]["score"] >= plain.detections[0].score

    def test_distance_from_matched_scale(self):
        template = TEMPLATE_BANK[2]
        img = scene_with(template, scale=1.25, seed=9)
        records = MultiScaleATR().run(img)
        assert records
        record = records[0]
        assert record["scale"] == 1.25
        # Range from the matched variant's true silhouette extent.
        variant = next(
            v
            for v in expand_bank(scales=(1.25,), quarter_turns=(0,))
            if v.base.name == template.name
        )
        expected = FOCAL_PIXELS * template.physical_size_m / variant.pixel_extent
        assert record["distance_m"] == pytest.approx(expected)

    def test_workload_factor(self):
        atr = MultiScaleATR(scales=(0.8, 1.0), quarter_turns=(0, 1))
        assert atr.workload_factor == pytest.approx(4.0)

    def test_empty_scene(self):
        assert MultiScaleATR().run(np.zeros((64, 64))) == []
