"""Synthetic scene generation."""

import numpy as np
import pytest

from repro.apps.atr.image import FOCAL_PIXELS, SceneSpec, generate_scene


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestSceneSpec:
    def test_defaults_valid(self):
        SceneSpec()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size=16),
            dict(n_targets=-1),
            dict(clutter_sigma=-0.1),
            dict(target_amplitude=0.0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SceneSpec(**kwargs)


class TestGeneration:
    def test_image_shape(self, rng):
        scene = generate_scene(SceneSpec(size=64), rng)
        assert scene.image.shape == (64, 64)

    def test_requested_targets_embedded(self, rng):
        scene = generate_scene(SceneSpec(size=96, n_targets=2), rng)
        assert len(scene.truths) == 2

    def test_zero_targets(self, rng):
        scene = generate_scene(SceneSpec(n_targets=0), rng)
        assert scene.truths == ()

    def test_deterministic_given_rng_state(self):
        a = generate_scene(SceneSpec(), np.random.default_rng(42))
        b = generate_scene(SceneSpec(), np.random.default_rng(42))
        assert np.array_equal(a.image, b.image)
        assert a.truths[0].row == b.truths[0].row

    def test_targets_within_bounds(self, rng):
        for _ in range(20):
            scene = generate_scene(SceneSpec(size=64), rng)
            for truth in scene.truths:
                assert 0 <= truth.row < 64
                assert 0 <= truth.col < 64

    def test_target_brightens_region(self, rng):
        spec = SceneSpec(size=64, clutter_sigma=0.1, target_amplitude=5.0)
        scene = generate_scene(spec, rng)
        truth = scene.truths[0]
        h, w = truth.template.mask.shape
        region = scene.image[truth.row : truth.row + int(h * truth.scale) + 2,
                             truth.col : truth.col + int(w * truth.scale) + 2]
        assert region.max() > scene.image.mean() + 3 * scene.image.std() * 0.5

    def test_clutter_sigma_respected(self, rng):
        scene = generate_scene(SceneSpec(n_targets=0, clutter_sigma=0.5), rng)
        assert scene.image.std() == pytest.approx(0.5, rel=0.05)

    def test_ground_truth_distance_consistent(self, rng):
        scene = generate_scene(SceneSpec(size=96), rng)
        truth = scene.truths[0]
        # distance = focal * size / pixel extent (pinhole model)
        h, w = truth.template.mask.shape
        extent = max(
            max(4, int(round(h * truth.scale))), max(4, int(round(w * truth.scale)))
        )
        assert truth.distance_m == pytest.approx(
            FOCAL_PIXELS * truth.template.physical_size_m / extent
        )

    def test_nbytes_float32_pixels(self, rng):
        scene = generate_scene(SceneSpec(size=64), rng)
        assert scene.nbytes == 64 * 64 * 4
