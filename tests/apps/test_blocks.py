"""The four ATR functional blocks."""

import numpy as np
import pytest

from repro.apps.atr.blocks import (
    TEMPLATE_SPECTRUM_CACHE,
    compute_distances,
    detect_targets,
    fft_correlate,
    ifft_peaks,
    label_components,
    label_components_reference,
    template_bank_spectra,
)
from repro.apps.atr.image import SceneSpec, generate_scene
from repro.apps.atr.templates import TEMPLATE_BANK


@pytest.fixture
def scene():
    return generate_scene(
        SceneSpec(size=64, n_targets=1, clutter_sigma=0.25),
        np.random.default_rng(3),
    )


class TestLabeling:
    def test_empty_mask(self):
        labels, n = label_components(np.zeros((5, 5), dtype=bool))
        assert n == 0
        assert labels.sum() == 0

    def test_single_blob(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[2:4, 2:4] = True
        labels, n = label_components(mask)
        assert n == 1
        assert (labels[2:4, 2:4] == 1).all()

    def test_two_separate_blobs(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0:2, 0:2] = True
        mask[5:7, 5:7] = True
        _, n = label_components(mask)
        assert n == 2

    def test_diagonal_not_connected(self):
        # 4-connectivity: diagonal touch is two components.
        mask = np.array([[1, 0], [0, 1]], dtype=bool)
        _, n = label_components(mask)
        assert n == 2

    def test_u_shape_merges(self):
        # A U-shape forces a union of provisional labels.
        mask = np.array(
            [
                [1, 0, 1],
                [1, 0, 1],
                [1, 1, 1],
            ],
            dtype=bool,
        )
        _, n = label_components(mask)
        assert n == 1

    def test_matches_scipy(self):
        from scipy import ndimage

        rng = np.random.default_rng(11)
        for _ in range(10):
            mask = rng.random((20, 20)) > 0.65
            _, ours = label_components(mask)
            _, theirs = ndimage.label(mask)
            assert ours == theirs

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            label_components(np.zeros(5, dtype=bool))


class TestLabelingReference:
    def test_reference_agrees_on_random_masks(self):
        rng = np.random.default_rng(17)
        for _ in range(20):
            mask = rng.random((24, 24)) > rng.uniform(0.3, 0.8)
            fast_labels, fast_n = label_components(mask)
            ref_labels, ref_n = label_components_reference(mask)
            assert fast_n == ref_n
            assert np.array_equal(fast_labels, ref_labels)

    def test_reference_rejects_non_2d(self):
        with pytest.raises(ValueError):
            label_components_reference(np.zeros(5, dtype=bool))


class TestSpectrumCache:
    def test_cached_spectra_bit_identical_across_sizes(self):
        """Cache contents must equal a fresh per-template transform exactly."""
        for n in (32, 64, 128):
            cached = template_bank_spectra(TEMPLATE_BANK, n)
            assert cached.shape == (len(TEMPLATE_BANK), n, n // 2 + 1)
            for ti, template in enumerate(TEMPLATE_BANK):
                fresh = np.conj(np.fft.rfft2(template.normalized(), s=(n, n)))
                assert np.array_equal(cached[ti], fresh)

    def test_repeat_calls_hit_and_return_same_array(self):
        TEMPLATE_SPECTRUM_CACHE.clear()
        first = template_bank_spectra(TEMPLATE_BANK, 64)
        misses = TEMPLATE_SPECTRUM_CACHE.misses
        second = template_bank_spectra(TEMPLATE_BANK, 64)
        assert second is first
        assert TEMPLATE_SPECTRUM_CACHE.misses == misses
        assert TEMPLATE_SPECTRUM_CACHE.hits >= 1

    def test_cached_spectra_are_read_only(self):
        stack = template_bank_spectra(TEMPLATE_BANK, 32)
        with pytest.raises(ValueError):
            stack[0, 0, 0] = 0.0

    def test_products_match_uncached_formula(self, scene):
        """fft_correlate output equals the direct convolution-theorem product."""
        rois = detect_targets(scene.image)
        spectra = fft_correlate(rois)
        for roi, spectrum in zip(rois, spectra):
            n = spectrum.fft_size
            f_patch = np.fft.rfft2(roi.patch - roi.patch.mean(), s=(n, n))
            for template in TEMPLATE_BANK:
                f_tmpl = np.fft.rfft2(template.normalized(), s=(n, n))
                expected = f_patch * np.conj(f_tmpl)
                np.testing.assert_allclose(
                    spectrum.spectra[template.name], expected, rtol=1e-12, atol=1e-12
                )

    def test_stacked_field_matches_dict(self, scene):
        spectra = fft_correlate(detect_targets(scene.image))
        for spectrum in spectra:
            assert spectrum.stacked is not None
            for ti, name in enumerate(spectrum.spectra):
                assert np.array_equal(spectrum.stacked[ti], spectrum.spectra[name])


class TestBatchedBlocks:
    def test_many_rois_equal_one_at_a_time(self):
        """Batched FFT/IFFT over many ROIs == running each ROI alone."""
        rng = np.random.default_rng(23)
        rois = []
        for _ in range(8):
            scene = generate_scene(SceneSpec(size=64, n_targets=2), rng)
            rois.extend(detect_targets(scene.image, max_regions=4))
        assert len(rois) >= 8
        batched = ifft_peaks(fft_correlate(rois))
        for roi, batch_peaks in zip(rois, batched):
            alone = ifft_peaks(fft_correlate([roi]))[0]
            assert alone.peaks == batch_peaks.peaks

    def test_compute_distances_vector_path_matches_scalar(self):
        rng = np.random.default_rng(29)
        rois = []
        for _ in range(6):
            scene = generate_scene(SceneSpec(size=64, n_targets=1), rng)
            rois.extend(detect_targets(scene.image))
        peak_sets = ifft_peaks(fft_correlate(rois))
        batched = compute_distances(peak_sets)
        scalar = [r for ps in peak_sets for r in compute_distances([ps])]
        assert batched == scalar


class TestDetect:
    def test_finds_embedded_target(self, scene):
        rois = detect_targets(scene.image)
        assert len(rois) >= 1
        truth = scene.truths[0]
        best = rois[0]
        assert abs(best.row - truth.row) <= 12
        assert abs(best.col - truth.col) <= 12

    def test_empty_image_no_detections(self):
        rois = detect_targets(np.zeros((64, 64)))
        assert rois == []

    def test_max_regions_respected(self):
        rng = np.random.default_rng(5)
        scene = generate_scene(SceneSpec(size=128, n_targets=4), rng)
        rois = detect_targets(scene.image, max_regions=2)
        assert len(rois) <= 2

    def test_rois_sorted_by_mass(self, scene):
        rois = detect_targets(scene.image, max_regions=4, threshold_sigma=1.5)
        masses = [r.mass for r in rois]
        assert masses == sorted(masses, reverse=True)

    def test_patch_window_size(self, scene):
        rois = detect_targets(scene.image, window=24)
        for roi in rois:
            assert roi.patch.shape == (24, 24)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            detect_targets(np.zeros((4, 4, 3)))


class TestFFTAndIFFT:
    def test_spectra_for_every_template(self, scene):
        rois = detect_targets(scene.image)
        spectra = fft_correlate(rois)
        assert len(spectra) == len(rois)
        assert set(spectra[0].spectra) == {t.name for t in TEMPLATE_BANK}

    def test_fft_size_is_power_of_two(self, scene):
        spectra = fft_correlate(detect_targets(scene.image))
        n = spectra[0].fft_size
        assert n & (n - 1) == 0

    def test_peaks_located(self, scene):
        peaks = ifft_peaks(fft_correlate(detect_targets(scene.image)))
        assert len(peaks) == 1
        for name, (value, r, c) in peaks[0].peaks.items():
            assert np.isfinite(value)

    def test_correlation_identifies_right_template(self):
        """A clean template image must correlate best with itself."""
        rng = np.random.default_rng(0)
        for template in TEMPLATE_BANK:
            img = rng.normal(0, 0.05, (64, 64))
            img[20 : 20 + template.mask.shape[0], 20 : 20 + template.mask.shape[1]] += (
                3.0 * template.mask
            )
            rois = detect_targets(img)
            assert rois, f"no ROI for {template.name}"
            peaks = ifft_peaks(fft_correlate(rois))[0]
            best = max(peaks.peaks.items(), key=lambda kv: kv[1][0])[0]
            assert best == template.name


class TestDistances:
    def test_distance_from_extent(self, scene):
        peaks = ifft_peaks(fft_correlate(detect_targets(scene.image)))
        records = compute_distances(peaks)
        assert len(records) == 1
        assert records[0]["distance_m"] > 0

    def test_min_score_filters(self, scene):
        peaks = ifft_peaks(fft_correlate(detect_targets(scene.image)))
        none = compute_distances(peaks, min_score=float("inf"))
        assert none == []

    def test_empty_input(self):
        assert compute_distances([]) == []

    def test_distance_accuracy_on_clean_scene(self):
        """Estimated range within ~35% of ground truth on easy scenes."""
        rng = np.random.default_rng(21)
        spec = SceneSpec(size=96, clutter_sigma=0.15)
        hits = 0
        total = 0
        for _ in range(10):
            scene = generate_scene(spec, rng)
            if not scene.truths:
                continue
            peaks = ifft_peaks(fft_correlate(detect_targets(scene.image)))
            records = compute_distances(peaks)
            if not records:
                continue
            total += 1
            truth = scene.truths[0]
            if abs(records[0]["distance_m"] - truth.distance_m) / truth.distance_m < 0.35:
                hits += 1
        assert total >= 8
        assert hits / total >= 0.7
