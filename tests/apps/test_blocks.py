"""The four ATR functional blocks."""

import numpy as np
import pytest

from repro.apps.atr.blocks import (
    compute_distances,
    detect_targets,
    fft_correlate,
    ifft_peaks,
    label_components,
)
from repro.apps.atr.image import SceneSpec, generate_scene
from repro.apps.atr.templates import TEMPLATE_BANK


@pytest.fixture
def scene():
    return generate_scene(
        SceneSpec(size=64, n_targets=1, clutter_sigma=0.25),
        np.random.default_rng(3),
    )


class TestLabeling:
    def test_empty_mask(self):
        labels, n = label_components(np.zeros((5, 5), dtype=bool))
        assert n == 0
        assert labels.sum() == 0

    def test_single_blob(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[2:4, 2:4] = True
        labels, n = label_components(mask)
        assert n == 1
        assert (labels[2:4, 2:4] == 1).all()

    def test_two_separate_blobs(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0:2, 0:2] = True
        mask[5:7, 5:7] = True
        _, n = label_components(mask)
        assert n == 2

    def test_diagonal_not_connected(self):
        # 4-connectivity: diagonal touch is two components.
        mask = np.array([[1, 0], [0, 1]], dtype=bool)
        _, n = label_components(mask)
        assert n == 2

    def test_u_shape_merges(self):
        # A U-shape forces a union of provisional labels.
        mask = np.array(
            [
                [1, 0, 1],
                [1, 0, 1],
                [1, 1, 1],
            ],
            dtype=bool,
        )
        _, n = label_components(mask)
        assert n == 1

    def test_matches_scipy(self):
        from scipy import ndimage

        rng = np.random.default_rng(11)
        for _ in range(10):
            mask = rng.random((20, 20)) > 0.65
            _, ours = label_components(mask)
            _, theirs = ndimage.label(mask)
            assert ours == theirs

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            label_components(np.zeros(5, dtype=bool))


class TestDetect:
    def test_finds_embedded_target(self, scene):
        rois = detect_targets(scene.image)
        assert len(rois) >= 1
        truth = scene.truths[0]
        best = rois[0]
        assert abs(best.row - truth.row) <= 12
        assert abs(best.col - truth.col) <= 12

    def test_empty_image_no_detections(self):
        rois = detect_targets(np.zeros((64, 64)))
        assert rois == []

    def test_max_regions_respected(self):
        rng = np.random.default_rng(5)
        scene = generate_scene(SceneSpec(size=128, n_targets=4), rng)
        rois = detect_targets(scene.image, max_regions=2)
        assert len(rois) <= 2

    def test_rois_sorted_by_mass(self, scene):
        rois = detect_targets(scene.image, max_regions=4, threshold_sigma=1.5)
        masses = [r.mass for r in rois]
        assert masses == sorted(masses, reverse=True)

    def test_patch_window_size(self, scene):
        rois = detect_targets(scene.image, window=24)
        for roi in rois:
            assert roi.patch.shape == (24, 24)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            detect_targets(np.zeros((4, 4, 3)))


class TestFFTAndIFFT:
    def test_spectra_for_every_template(self, scene):
        rois = detect_targets(scene.image)
        spectra = fft_correlate(rois)
        assert len(spectra) == len(rois)
        assert set(spectra[0].spectra) == {t.name for t in TEMPLATE_BANK}

    def test_fft_size_is_power_of_two(self, scene):
        spectra = fft_correlate(detect_targets(scene.image))
        n = spectra[0].fft_size
        assert n & (n - 1) == 0

    def test_peaks_located(self, scene):
        peaks = ifft_peaks(fft_correlate(detect_targets(scene.image)))
        assert len(peaks) == 1
        for name, (value, r, c) in peaks[0].peaks.items():
            assert np.isfinite(value)

    def test_correlation_identifies_right_template(self):
        """A clean template image must correlate best with itself."""
        rng = np.random.default_rng(0)
        for template in TEMPLATE_BANK:
            img = rng.normal(0, 0.05, (64, 64))
            img[20 : 20 + template.mask.shape[0], 20 : 20 + template.mask.shape[1]] += (
                3.0 * template.mask
            )
            rois = detect_targets(img)
            assert rois, f"no ROI for {template.name}"
            peaks = ifft_peaks(fft_correlate(rois))[0]
            best = max(peaks.peaks.items(), key=lambda kv: kv[1][0])[0]
            assert best == template.name


class TestDistances:
    def test_distance_from_extent(self, scene):
        peaks = ifft_peaks(fft_correlate(detect_targets(scene.image)))
        records = compute_distances(peaks)
        assert len(records) == 1
        assert records[0]["distance_m"] > 0

    def test_min_score_filters(self, scene):
        peaks = ifft_peaks(fft_correlate(detect_targets(scene.image)))
        none = compute_distances(peaks, min_score=float("inf"))
        assert none == []

    def test_empty_input(self):
        assert compute_distances([]) == []

    def test_distance_accuracy_on_clean_scene(self):
        """Estimated range within ~35% of ground truth on easy scenes."""
        rng = np.random.default_rng(21)
        spec = SceneSpec(size=96, clutter_sigma=0.15)
        hits = 0
        total = 0
        for _ in range(10):
            scene = generate_scene(spec, rng)
            if not scene.truths:
                continue
            peaks = ifft_peaks(fft_correlate(detect_targets(scene.image)))
            records = compute_distances(peaks)
            if not records:
                continue
            total += 1
            truth = scene.truths[0]
            if abs(records[0]["distance_m"] - truth.distance_m) / truth.distance_m < 0.35:
                hits += 1
        assert total >= 8
        assert hits / total >= 0.7
