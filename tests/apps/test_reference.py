"""End-to-end reference ATR pipeline."""

import numpy as np
import pytest

from repro.apps.atr import ATRPipeline, SceneSpec, generate_scene


@pytest.fixture
def pipeline():
    return ATRPipeline()


class TestEndToEnd:
    def test_recognizes_easy_scenes(self, pipeline):
        rng = np.random.default_rng(42)
        spec = SceneSpec(size=64, n_targets=1, clutter_sigma=0.3)
        scores = []
        for i in range(10):
            scene = generate_scene(spec, rng)
            result = pipeline.run(scene, frame_id=i)
            scores.append(pipeline.score_against_truth(scene, result))
        assert sum(scores) / len(scores) >= 0.8

    def test_result_carries_frame_id(self, pipeline):
        scene = generate_scene(SceneSpec(), np.random.default_rng(0))
        assert pipeline.run(scene, frame_id=17).frame_id == 17

    def test_accepts_raw_array(self, pipeline):
        img = np.zeros((64, 64))
        result = pipeline.run(img)
        assert result.detections == ()

    def test_result_nbytes_small(self, pipeline):
        """The final result is the paper's ~0.1 KB message."""
        scene = generate_scene(SceneSpec(), np.random.default_rng(1))
        result = pipeline.run(scene)
        assert result.nbytes <= 100

    def test_max_regions_limits_detections(self):
        rng = np.random.default_rng(9)
        scene = generate_scene(SceneSpec(size=128, n_targets=3), rng)
        pipe = ATRPipeline(max_regions=1)
        assert len(pipe.run(scene).detections) <= 1


class TestScoring:
    def test_empty_scene_empty_result_is_perfect(self, pipeline):
        scene = generate_scene(SceneSpec(n_targets=0), np.random.default_rng(0))
        result = pipeline.run(scene)
        if not result.detections:
            assert pipeline.score_against_truth(scene, result) == 1.0

    def test_wrong_template_scores_zero(self, pipeline):
        from repro.apps.atr.reference import ATRResult, Detection

        scene = generate_scene(SceneSpec(), np.random.default_rng(3))
        truth = scene.truths[0]
        wrong_name = next(
            t.name
            for t in pipeline.templates
            if t.name != truth.template.name
        )
        fake = ATRResult(
            frame_id=0,
            detections=(
                Detection(wrong_name, 1.0, truth.row, truth.col, 100.0),
            ),
        )
        assert pipeline.score_against_truth(scene, fake) == 0.0
