"""End-to-end reference ATR pipeline."""

import numpy as np
import pytest

from repro.apps.atr import ATRPipeline, SceneSpec, generate_scene


@pytest.fixture
def pipeline():
    return ATRPipeline()


class TestEndToEnd:
    def test_recognizes_easy_scenes(self, pipeline):
        rng = np.random.default_rng(42)
        spec = SceneSpec(size=64, n_targets=1, clutter_sigma=0.3)
        scores = []
        for i in range(10):
            scene = generate_scene(spec, rng)
            result = pipeline.run(scene, frame_id=i)
            scores.append(pipeline.score_against_truth(scene, result))
        assert sum(scores) / len(scores) >= 0.8

    def test_result_carries_frame_id(self, pipeline):
        scene = generate_scene(SceneSpec(), np.random.default_rng(0))
        assert pipeline.run(scene, frame_id=17).frame_id == 17

    def test_accepts_raw_array(self, pipeline):
        img = np.zeros((64, 64))
        result = pipeline.run(img)
        assert result.detections == ()

    def test_result_nbytes_small(self, pipeline):
        """The final result is the paper's ~0.1 KB message."""
        scene = generate_scene(SceneSpec(), np.random.default_rng(1))
        result = pipeline.run(scene)
        assert result.nbytes <= 100

    def test_max_regions_limits_detections(self):
        rng = np.random.default_rng(9)
        scene = generate_scene(SceneSpec(size=128, n_targets=3), rng)
        pipe = ATRPipeline(max_regions=1)
        assert len(pipe.run(scene).detections) <= 1


class TestRunBatch:
    def test_matches_per_frame_run(self, pipeline):
        rng = np.random.default_rng(7)
        scenes = [
            generate_scene(SceneSpec(size=64, n_targets=2), rng) for _ in range(6)
        ]
        batch = pipeline.run_batch(scenes)
        singles = [pipeline.run(s, i) for i, s in enumerate(scenes)]
        assert [r.frame_id for r in batch] == [r.frame_id for r in singles]
        for batched, single in zip(batch, singles):
            assert batched.detections == single.detections

    def test_matches_run_with_multiple_regions(self):
        pipe = ATRPipeline(max_regions=3)
        rng = np.random.default_rng(11)
        scenes = [
            generate_scene(SceneSpec(size=96, n_targets=3), rng) for _ in range(5)
        ]
        batch = pipe.run_batch(scenes)
        for i, scene in enumerate(scenes):
            assert batch[i].detections == pipe.run(scene, i).detections

    def test_empty_roi_frame_path(self, pipeline):
        rng = np.random.default_rng(13)
        scenes = [
            generate_scene(SceneSpec(size=64), rng),
            np.zeros((64, 64)),  # no ROIs: skips the FFT/IFFT stages
            generate_scene(SceneSpec(size=64), rng),
        ]
        batch = pipeline.run_batch(scenes)
        assert len(batch) == 3
        assert batch[1].detections == ()
        for i, scene in enumerate(scenes):
            assert batch[i].detections == pipeline.run(scene, i).detections

    def test_all_frames_empty(self, pipeline):
        batch = pipeline.run_batch([np.zeros((64, 64)), np.zeros((64, 64))])
        assert [r.detections for r in batch] == [(), ()]

    def test_empty_scene_list(self, pipeline):
        assert pipeline.run_batch([]) == []

    def test_start_frame_id(self, pipeline):
        scenes = [generate_scene(SceneSpec(), np.random.default_rng(2))]
        batch = pipeline.run_batch(scenes, start_frame_id=40)
        assert batch[0].frame_id == 40


class TestScoring:
    def test_empty_scene_empty_result_is_perfect(self, pipeline):
        scene = generate_scene(SceneSpec(n_targets=0), np.random.default_rng(0))
        result = pipeline.run(scene)
        if not result.detections:
            assert pipeline.score_against_truth(scene, result) == 1.0

    def test_wrong_template_scores_zero(self, pipeline):
        from repro.apps.atr.reference import ATRResult, Detection

        scene = generate_scene(SceneSpec(), np.random.default_rng(3))
        truth = scene.truths[0]
        wrong_name = next(
            t.name
            for t in pipeline.templates
            if t.name != truth.template.name
        )
        fake = ATRResult(
            frame_id=0,
            detections=(
                Detection(wrong_name, 1.0, truth.row, truth.col, 100.0),
            ),
        )
        assert pipeline.score_against_truth(scene, fake) == 0.0
