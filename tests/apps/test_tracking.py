"""Multi-frame, multi-target tracking."""

import pytest

from repro.apps.atr.reference import ATRResult, Detection
from repro.apps.atr.tracking import ATRTracker


def frame(frame_id, *detections):
    return ATRResult(frame_id=frame_id, detections=tuple(detections))


def det(template, row, col, distance=100.0, score=1.0):
    return Detection(template, score, row, col, distance)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(gate_px=0), dict(smoothing=0.0), dict(smoothing=1.5), dict(min_hits=0)],
    )
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            ATRTracker(**kwargs)


class TestSingleTarget:
    def test_moving_target_keeps_one_track(self):
        tracker = ATRTracker(gate_px=10)
        for i in range(8):
            tracker.update(frame(i, det("tank", 20 + 2 * i, 30 + i)))
        assert len(tracker.all_tracks()) == 1
        track = tracker.live_tracks[0]
        assert track.hits == 8
        assert track.template == "tank"
        assert (track.row, track.col) == (34, 37)

    def test_distance_smoothing_reduces_noise(self):
        tracker = ATRTracker(smoothing=0.3)
        readings = [100.0, 140.0, 60.0, 130.0, 70.0, 110.0, 90.0]
        for i, distance in enumerate(readings):
            tracker.update(frame(i, det("tank", 20, 20, distance=distance)))
        track = tracker.live_tracks[0]
        true = 100.0
        raw_error = abs(readings[-1] - true)
        assert abs(track.distance_m - true) < raw_error

    def test_template_majority_vote(self):
        tracker = ATRTracker()
        labels = ["tank", "tank", "truck", "tank"]
        for i, label in enumerate(labels):
            tracker.update(frame(i, det(label, 20, 20)))
        assert tracker.live_tracks[0].template == "tank"

    def test_track_retired_after_coasting(self):
        tracker = ATRTracker(max_coast_frames=2)
        tracker.update(frame(0, det("tank", 20, 20)))
        for i in range(1, 5):
            tracker.update(frame(i))  # empty frames
        assert tracker.live_tracks == []
        assert len(tracker.all_tracks()) == 1


class TestMultiTarget:
    def test_two_separated_targets_two_tracks(self):
        tracker = ATRTracker(gate_px=8)
        for i in range(5):
            tracker.update(
                frame(i, det("tank", 10 + i, 10), det("aircraft", 50, 50 + i))
            )
        live = tracker.live_tracks
        assert len(live) == 2
        assert {t.template for t in live} == {"tank", "aircraft"}

    def test_far_jump_starts_new_track(self):
        tracker = ATRTracker(gate_px=5)
        tracker.update(frame(0, det("tank", 10, 10)))
        tracker.update(frame(1, det("tank", 50, 50)))
        assert len(tracker.live_tracks) == 2

    def test_greedy_association_prefers_closest(self):
        tracker = ATRTracker(gate_px=20)
        tracker.update(frame(0, det("tank", 10, 10), det("tank", 30, 30)))
        a, b = sorted(tracker.live_tracks, key=lambda t: t.row)
        tracker.update(frame(1, det("tank", 12, 12), det("tank", 28, 28)))
        a2, b2 = sorted(tracker.live_tracks, key=lambda t: t.row)
        assert (a2.track_id, b2.track_id) == (a.track_id, b.track_id)
        assert a2.hits == b2.hits == 2

    def test_one_detection_cannot_feed_two_tracks(self):
        tracker = ATRTracker(gate_px=30)
        tracker.update(frame(0, det("tank", 10, 10), det("tank", 20, 20)))
        tracker.update(frame(1, det("tank", 15, 15)))
        hits = sorted(t.hits for t in tracker.live_tracks)
        assert hits == [1, 2]

    def test_confirmed_filters_clutter(self):
        tracker = ATRTracker(min_hits=3, gate_px=5)
        for i in range(4):
            tracker.update(frame(i, det("tank", 10, 10)))
        tracker.update(frame(4, det("truck", 60, 60)))  # single clutter hit
        confirmed = tracker.confirmed_tracks()
        assert len(confirmed) == 1
        assert confirmed[0].template == "tank"


class TestUpdateMany:
    def test_equivalent_to_sequential_updates(self):
        results = [frame(i, det("tank", 10 + i, 10)) for i in range(6)]
        one = ATRTracker(gate_px=10)
        for result in results:
            one.update(result)
        many = ATRTracker(gate_px=10)
        live = many.update_many(results)
        assert len(live) == len(one.live_tracks) == 1
        assert live[0].hits == one.live_tracks[0].hits == 6

    def test_empty_iterable_returns_current_tracks(self):
        tracker = ATRTracker()
        tracker.update(frame(0, det("tank", 5, 5)))
        assert len(tracker.update_many([])) == 1


class TestEndToEndWithRecognizer:
    def test_tracks_synthetic_target_through_scenes(self):
        """Recognizer detections over a static scene form one stable track."""
        import numpy as np

        from repro.apps.atr import ATRPipeline, SceneSpec, generate_scene

        rng = np.random.default_rng(5)
        scene = generate_scene(SceneSpec(size=96, clutter_sigma=0.2), rng)
        pipe = ATRPipeline()
        tracker = ATRTracker(gate_px=6)
        for i in range(5):
            # Fresh clutter, same target: regenerate noise around the
            # fixed embedded silhouette.
            noisy = scene.image + rng.normal(0, 0.05, scene.image.shape)
            tracker.update(pipe.run(noisy, frame_id=i))
        confirmed = tracker.confirmed_tracks()
        assert len(confirmed) == 1
        assert confirmed[0].template == scene.truths[0].template.name
