"""Target templates."""

import numpy as np
import pytest

from repro.apps.atr.templates import TEMPLATE_BANK, make_template_bank


class TestBank:
    def test_three_distinct_templates(self):
        names = [t.name for t in TEMPLATE_BANK]
        assert names == ["tank", "truck", "aircraft"]

    def test_masks_binaryish(self):
        for t in TEMPLATE_BANK:
            assert t.mask.min() >= 0.0 and t.mask.max() <= 1.0
            assert t.mask.max() == 1.0  # non-empty

    def test_masks_differ_pairwise(self):
        for a in TEMPLATE_BANK:
            for b in TEMPLATE_BANK:
                if a.name != b.name:
                    assert not np.array_equal(a.mask, b.mask)

    def test_physical_sizes_positive(self):
        for t in TEMPLATE_BANK:
            assert t.physical_size_m > 0

    def test_pixel_extent(self):
        for t in TEMPLATE_BANK:
            assert 0 < t.pixel_extent <= max(t.shape)

    def test_custom_size(self):
        bank = make_template_bank(32)
        assert all(t.shape == (32, 32) for t in bank)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_template_bank(4)


class TestNormalized:
    def test_zero_mean(self):
        for t in TEMPLATE_BANK:
            assert abs(t.normalized().mean()) < 1e-12

    def test_unit_energy(self):
        for t in TEMPLATE_BANK:
            n = t.normalized()
            assert np.sqrt((n * n).sum()) == pytest.approx(1.0)
