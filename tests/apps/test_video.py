"""Video workload: GOP structures and the frame-based DVS experiment."""

import pytest

from repro.apps.video import FrameType, GopStructure, VIDEO_PROFILE, video_workload
from repro.apps.video.profile import VIDEO_FRAME_PERIOD_S
from repro.errors import ConfigurationError


class TestGopStructure:
    def test_default_pattern(self):
        gop = GopStructure()
        assert len(gop) == 9
        assert gop.pattern[0] is FrameType.I

    def test_frame_types_repeat(self):
        gop = GopStructure("IBBP")
        types = gop.frame_types(9)
        assert [str(t) for t in types] == list("IBBPIBBPI")

    def test_workload_scales_follow_costs(self):
        gop = GopStructure("IPB")
        assert gop.workload_scales() == [1.0, 0.6, 0.4]

    def test_mean_and_peak(self):
        gop = GopStructure("IPB")
        assert gop.peak_cost == 1.0
        assert gop.mean_cost == pytest.approx((1.0 + 0.6 + 0.4) / 3)

    def test_describe(self):
        assert GopStructure("IBBP").describe().startswith("IBBP")

    @pytest.mark.parametrize("pattern", ["", "PBB", "IXB"])
    def test_invalid_patterns_rejected(self, pattern):
        with pytest.raises(ConfigurationError):
            GopStructure(pattern)

    def test_custom_costs(self):
        gop = GopStructure("IP", costs={FrameType.I: 2.0, FrameType.P: 1.0})
        assert gop.workload_scales() == [2.0, 1.0]

    def test_missing_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            GopStructure("IPB", costs={FrameType.I: 1.0})

    def test_nonpositive_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            GopStructure("IP", costs={FrameType.I: 1.0, FrameType.P: 0.0})


class TestVideoProfile:
    def test_single_node_feasible_at_frame_rate(self):
        """An I frame must fit the 0.6 s period on one node."""
        from repro.hw.dvs import SA1100_TABLE
        from repro.hw.link import PAPER_LINK_TIMING
        from repro.pipeline.schedule import plan_node
        from repro.pipeline.tasks import Partition

        plan = plan_node(
            Partition(VIDEO_PROFILE).stage(0),
            PAPER_LINK_TIMING,
            VIDEO_FRAME_PERIOD_S,
            SA1100_TABLE,
        )
        assert plan.schedule.feasible

    def test_workload_trace_is_gop_periodic(self):
        import numpy as np

        trace = video_workload(GopStructure("IBBP"))
        rng = np.random.default_rng(0)
        scales = [trace.scale_for(i, rng) for i in range(8)]
        assert scales == [1.0, 0.4, 0.4, 0.6] * 2


class TestFrameBasedDVS:
    """Choi et al.'s technique, realized as adaptive per-frame DVS."""

    def run_decoder(self, adaptive: bool):
        from repro.core.policies import DVSDuringIOPolicy, SlowestFeasiblePolicy
        from repro.hw.dvs import SA1100_TABLE
        from repro.hw.link import PAPER_LINK_TIMING
        from repro.pipeline.engine import PipelineConfig, PipelineEngine
        from repro.pipeline.schedule import plan_node
        from repro.pipeline.tasks import Partition
        from tests.conftest import tiny_battery_factory

        partition = Partition(VIDEO_PROFILE)
        plans = [
            plan_node(
                a, PAPER_LINK_TIMING, VIDEO_FRAME_PERIOD_S, SA1100_TABLE
            )
            for a in partition.assignments
        ]
        roles = DVSDuringIOPolicy(SlowestFeasiblePolicy()).role_configs(
            plans, SA1100_TABLE
        )
        config = PipelineConfig(
            partition=partition,
            roles=roles,
            node_names=("player",),
            battery_factory=tiny_battery_factory,
            deadline_s=VIDEO_FRAME_PERIOD_S,
            workload=video_workload(),
            adaptive_workload_dvs=adaptive,
            max_frames=180,  # 20 GOPs
            monitor_interval_s=None,
        )
        return PipelineEngine(config).run()

    def test_frame_based_dvs_saves_energy_without_misses(self):
        static = self.run_decoder(adaptive=False)
        frame_based = self.run_decoder(adaptive=True)
        assert static.frames_completed == frame_based.frames_completed == 180
        # Both meet the playback deadline (the static level is sized
        # for the I frame, the worst case).
        assert static.late_results == frame_based.late_results == 0
        # Frame-based DVS spends measurably less on the B/P frames.
        assert (
            frame_based.delivered_mah["player"]
            < 0.97 * static.delivered_mah["player"]
        )
