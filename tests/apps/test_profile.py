"""Task profiles: the Fig. 6 model."""

import pytest

from repro.apps.atr.profile import (
    PAPER_PROFILE,
    PAPER_PROFILE_RAW,
    BlockProfile,
    TaskProfile,
    measure_profile,
)
from repro.errors import ConfigurationError


class TestPaperProfile:
    def test_raw_block_times_are_fig6(self):
        times = [b.seconds_at_max for b in PAPER_PROFILE_RAW.blocks]
        assert times == [0.18, 0.19, 0.32, 0.53]

    def test_raw_payloads_are_fig6(self):
        payloads = [b.output_bytes for b in PAPER_PROFILE_RAW.blocks]
        assert payloads == [600, 7500, 7500, 100]
        assert PAPER_PROFILE_RAW.input_bytes == 10_100

    def test_normalized_total_is_paper_proc_time(self):
        assert PAPER_PROFILE.total_seconds_at_max == pytest.approx(1.1)

    def test_normalization_preserves_ratios(self):
        raw = PAPER_PROFILE_RAW.blocks
        norm = PAPER_PROFILE.blocks
        for a, b in zip(raw, norm):
            assert b.seconds_at_max / a.seconds_at_max == pytest.approx(1.1 / 1.22)

    def test_normalization_preserves_payloads(self):
        assert [b.output_bytes for b in PAPER_PROFILE.blocks] == [
            b.output_bytes for b in PAPER_PROFILE_RAW.blocks
        ]

    def test_block_names(self):
        assert PAPER_PROFILE.names == (
            "target_detection",
            "fft",
            "ifft",
            "compute_distance",
        )

    def test_output_bytes_is_last_block(self):
        assert PAPER_PROFILE.output_bytes == 100


class TestSegmentQueries:
    def test_segment_seconds(self):
        assert PAPER_PROFILE_RAW.segment_seconds(1, 4) == pytest.approx(
            0.19 + 0.32 + 0.53
        )

    def test_segment_input_bytes_first_is_frame(self):
        assert PAPER_PROFILE.segment_input_bytes(0) == 10_100

    def test_segment_input_bytes_interior(self):
        assert PAPER_PROFILE.segment_input_bytes(1) == 600

    def test_segment_output_bytes(self):
        assert PAPER_PROFILE.segment_output_bytes(2) == 7500
        assert PAPER_PROFILE.segment_output_bytes(4) == 100

    @pytest.mark.parametrize("rng", [(-1, 2), (2, 2), (0, 9)])
    def test_bad_ranges_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            PAPER_PROFILE.segment_seconds(*rng)


class TestValidation:
    def test_empty_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskProfile(blocks=(), input_bytes=100)

    def test_negative_block_time_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockProfile("x", -1.0, 100)

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockProfile("x", 1.0, -5)

    def test_scaled_requires_positive(self):
        with pytest.raises(ConfigurationError):
            PAPER_PROFILE.scaled(0.0)


class TestBlockScaling:
    def test_scales_named_blocks_only(self):
        heavier = PAPER_PROFILE.with_blocks_scaled({"fft", "ifft"}, 3.0)
        by_name = {b.name: b for b in heavier.blocks}
        base = {b.name: b for b in PAPER_PROFILE.blocks}
        assert by_name["fft"].seconds_at_max == pytest.approx(
            3.0 * base["fft"].seconds_at_max
        )
        assert by_name["target_detection"].seconds_at_max == pytest.approx(
            base["target_detection"].seconds_at_max
        )

    def test_payloads_untouched(self):
        heavier = PAPER_PROFILE.with_blocks_scaled({"fft"}, 2.0)
        assert [b.output_bytes for b in heavier.blocks] == [
            b.output_bytes for b in PAPER_PROFILE.blocks
        ]

    def test_unknown_block_rejected(self):
        with pytest.raises(ConfigurationError):
            PAPER_PROFILE.with_blocks_scaled({"nope"}, 2.0)

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            PAPER_PROFILE.with_blocks_scaled({"fft"}, 0.0)


class TestMeasuredProfile:
    def test_measure_profile_totals_itsy_time(self):
        profile = measure_profile(repeats=1, itsy_total_seconds=1.1)
        assert profile.total_seconds_at_max == pytest.approx(1.1)

    def test_measure_profile_has_four_blocks(self):
        profile = measure_profile(repeats=1)
        assert profile.names == PAPER_PROFILE.names

    def test_measure_profile_payloads_positive(self):
        profile = measure_profile(repeats=1)
        assert profile.input_bytes > 0
        assert all(b.output_bytes > 0 for b in profile.blocks)

    def test_measure_profile_batched_frames(self):
        profile = measure_profile(repeats=1, frames=3)
        assert profile.names == PAPER_PROFILE.names
        assert profile.total_seconds_at_max == pytest.approx(1.1)
        assert profile.input_bytes > 0
        assert all(b.output_bytes > 0 for b in profile.blocks)

    def test_measure_profile_rejects_zero_frames(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            measure_profile(repeats=1, frames=0)
