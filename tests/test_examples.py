"""Smoke tests: the fast example scripts must run end to end.

Only the examples that finish in a few seconds run here; the
discharge-heavy demos (quickstart, rotation study, recovery) are
exercised indirectly by the benchmark suite and documented in README.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    ("partitioning_explorer.py", []),
    ("yds_scheduling_demo.py", []),
    ("battery_models_demo.py", []),
    ("atr_image_demo.py", ["3"]),
    ("video_decode_demo.py", ["IBBP"]),
]


@pytest.mark.parametrize("script,args", FAST_EXAMPLES, ids=lambda p: str(p))
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_have_docstrings_and_main():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python3\n"""', '"""')), script
        assert 'if __name__ == "__main__":' in text, script
        assert "Usage::" in text, f"{script} lacks a usage block"
