"""Analytical lifetime prediction, cross-validated against the engine."""

import pytest

from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.policies import (
    BaselinePolicy,
    DVSDuringIOPolicy,
    SlowestFeasiblePolicy,
)
from repro.core.prediction import (
    predict_first_death,
    predict_role_lifetime_hours,
    role_duty_cycle,
)
from repro.errors import ScheduleError
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.hw.power import PowerMode
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition
from tests.conftest import TINY_KIBAM, tiny_battery_factory

D = 2.3


def roles_for(cuts, policy):
    partition = Partition(PAPER_PROFILE, cuts)
    plans = [
        plan_node(a, PAPER_LINK_TIMING, D, SA1100_TABLE)
        for a in partition.assignments
    ]
    return policy.role_configs(plans, SA1100_TABLE)


class TestDutyCycle:
    def test_baseline_fills_frame_exactly(self):
        (role,) = roles_for((), BaselinePolicy())
        segments = role_duty_cycle(role)
        assert sum(s.duration_s for s in segments) == pytest.approx(D)
        # No idle in the baseline (2.3 s of work in a 2.3 s frame).
        assert all(s.mode is not PowerMode.IDLE for s in segments)

    def test_partitioned_stage_has_idle(self):
        roles = roles_for((1,), SlowestFeasiblePolicy())
        segments = role_duty_cycle(roles[0])
        idle = [s for s in segments if s.mode is PowerMode.IDLE]
        assert idle and idle[0].duration_s > 0.3

    def test_mode_sequence(self):
        roles = roles_for((1,), DVSDuringIOPolicy(SlowestFeasiblePolicy()))
        modes = [s.mode for s in role_duty_cycle(roles[1])]
        assert modes[0] is PowerMode.COMMUNICATION
        assert modes[1] is PowerMode.COMPUTATION

    def test_io_level_respected(self):
        roles = roles_for((1,), DVSDuringIOPolicy(SlowestFeasiblePolicy()))
        segments = role_duty_cycle(roles[1])
        comm = [s for s in segments if s.mode is PowerMode.COMMUNICATION]
        assert all(s.level_mhz == 59.0 for s in comm)

    def test_overloaded_stage_rejected(self):
        (role,) = roles_for((), BaselinePolicy())
        with pytest.raises(ScheduleError):
            role_duty_cycle(role, deadline_s=2.0)

    def test_ack_overhead_consumes_idle(self):
        roles = roles_for((1,), SlowestFeasiblePolicy())
        plain = role_duty_cycle(roles[0])
        acked = role_duty_cycle(roles[0], ack_overhead_s=0.18)
        idle_of = lambda segs: sum(
            s.duration_s for s in segs if s.mode is PowerMode.IDLE
        )
        assert idle_of(acked) == pytest.approx(idle_of(plain) - 0.18)


class TestEngineAgreement:
    """The analytical path and the DES engine must agree closely."""

    @pytest.mark.parametrize(
        "cuts,policy",
        [
            ((), BaselinePolicy()),
            ((), DVSDuringIOPolicy(BaselinePolicy())),
            ((1,), SlowestFeasiblePolicy()),
            ((1,), DVSDuringIOPolicy(SlowestFeasiblePolicy())),
            ((1, 3), DVSDuringIOPolicy(SlowestFeasiblePolicy())),
        ],
        ids=["1", "1A", "2", "2A", "three-stage"],
    )
    def test_first_death_matches_engine(self, cuts, policy):
        from tests.pipeline.test_engine import make_config
        from repro.pipeline.engine import PipelineEngine

        roles = roles_for(cuts, policy)
        stage, predicted_h, _ = predict_first_death(roles, battery=TINY_KIBAM)

        result = PipelineEngine(make_config(cuts=cuts, policy=policy)).run()
        engine_first = min(result.death_times_s.values()) / 3600.0
        assert engine_first == pytest.approx(predicted_h, rel=0.005)
        # And it is the same node that dies.
        dead_node = min(result.death_times_s, key=result.death_times_s.get)
        assert dead_node == f"node{stage + 1}"


class TestFirstDeath:
    def test_heavy_stage_dies_first(self):
        roles = roles_for((1,), SlowestFeasiblePolicy())
        stage, hours, per_stage = predict_first_death(roles, battery=TINY_KIBAM)
        assert stage == 1  # Node2, as the paper observes
        assert per_stage[0] > per_stage[1]

    def test_dvs_during_io_extends_all_stages(self):
        plain = roles_for((1,), SlowestFeasiblePolicy())
        dvs = roles_for((1,), DVSDuringIOPolicy(SlowestFeasiblePolicy()))
        for p, d in zip(plain, dvs):
            assert predict_role_lifetime_hours(
                d, battery=TINY_KIBAM
            ) >= predict_role_lifetime_hours(p, battery=TINY_KIBAM)

    def test_empty_roles_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            predict_first_death([])
