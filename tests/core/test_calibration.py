"""Calibration against the paper's measured lifetimes."""

import pytest

from repro.core.calibration import (
    Anchor,
    DutySegment,
    calibrate_battery,
    paper_anchors,
    predicted_lifetime_hours,
)
from repro.errors import CalibrationError
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS, KiBaMParameters
from repro.hw.power import PAPER_POWER_MODEL, PowerMode


class TestAnchors:
    def test_five_anchors(self):
        anchors = paper_anchors()
        assert [a.label for a in anchors] == ["0A", "0B", "1", "1A", "2"]

    def test_targets_are_paper_lifetimes(self):
        targets = {a.label: a.target_hours for a in paper_anchors()}
        assert targets == {"0A": 3.4, "0B": 12.9, "1": 6.13, "1A": 7.6, "2": 14.1}

    def test_experiment1_duty_cycle_fills_deadline(self):
        anchor = next(a for a in paper_anchors() if a.label == "1")
        assert sum(s.duration_s for s in anchor.segments) == pytest.approx(2.3)

    def test_durations_derived_from_profile_and_link(self):
        anchor = next(a for a in paper_anchors() if a.label == "1")
        recv = next(s for s in anchor.segments if s.mode is PowerMode.COMMUNICATION)
        assert recv.duration_s == pytest.approx(1.1, abs=0.01)


class TestStoredConstants:
    """The shipped parameters must reproduce every anchor."""

    @pytest.mark.parametrize("anchor", paper_anchors(), ids=lambda a: a.label)
    def test_anchor_within_tolerance(self, anchor):
        predicted = predicted_lifetime_hours(
            anchor, PAPER_KIBAM_PARAMETERS, PAPER_POWER_MODEL
        )
        assert predicted == pytest.approx(anchor.target_hours, abs=0.4)

    def test_stored_point_near_stationary(self):
        """Restarting the fit from the stored constants must not move far."""
        result = calibrate_battery(max_nfev=3)
        assert result.battery.capacity_mah == pytest.approx(
            PAPER_KIBAM_PARAMETERS.capacity_mah, rel=0.05
        )
        assert result.max_abs_residual_hours < 0.4


class TestPredictedLifetime:
    def test_continuous_discharge_matches_ttd(self):
        anchor = Anchor(
            "x", (DutySegment(PowerMode.COMPUTATION, 206.4, 1.0),), 1.0
        )
        from repro.hw.battery import KiBaM

        cell = KiBaM(PAPER_KIBAM_PARAMETERS)
        expected = cell.time_to_death(130.0) / 3600.0
        predicted = predicted_lifetime_hours(
            anchor, PAPER_KIBAM_PARAMETERS, PAPER_POWER_MODEL
        )
        assert predicted == pytest.approx(expected, rel=1e-3)

    def test_no_death_raises(self):
        anchor = Anchor("x", (DutySegment(PowerMode.IDLE, 59.0, 1.0),), 1.0)
        params = KiBaMParameters(capacity_mah=1e6, c=0.5, k_prime_per_hour=10.0)
        with pytest.raises(CalibrationError):
            predicted_lifetime_hours(anchor, params, PAPER_POWER_MODEL, max_hours=0.1)
