"""YDS optimal voltage scheduling."""

import pytest

from repro.core.yds import (
    Job,
    discretize_to_table,
    peak_speed,
    schedule_energy,
    yds_schedule,
)
from repro.errors import ConfigurationError, ScheduleError
from repro.hw.dvs import SA1100_TABLE


def total_work(segments):
    return sum(s.work for s in segments)


class TestBasics:
    def test_single_job_spreads_over_window(self):
        segs = yds_schedule([Job("a", 0.0, 10.0, 5.0)])
        assert len(segs) == 1
        assert segs[0].speed == pytest.approx(0.5)
        assert (segs[0].start, segs[0].end) == (0.0, 10.0)

    def test_nested_windows_share_critical_interval(self):
        segs = yds_schedule([Job("a", 0.0, 5.0, 2.0), Job("b", 0.0, 10.0, 3.0)])
        # Density over [0, 10] (0.5) beats [0, 5] (0.4): one flat segment.
        assert len(segs) == 1
        assert segs[0].speed == pytest.approx(0.5)
        assert segs[0].jobs == ("a", "b")

    def test_textbook_two_level_profile(self):
        segs = yds_schedule([Job("hot", 0.0, 2.0, 2.0), Job("cool", 0.0, 10.0, 2.0)])
        assert [round(s.speed, 4) for s in segs] == [1.0, 0.25]
        assert (segs[0].start, segs[0].end) == (0.0, 2.0)
        assert (segs[1].start, segs[1].end) == (2.0, 10.0)

    def test_segment_split_across_critical_interval(self):
        """A slow job straddling a hot window gets split around it."""
        segs = yds_schedule(
            [Job("hot", 4.0, 6.0, 4.0), Job("slow", 0.0, 10.0, 2.0)]
        )
        speeds = [(s.start, s.end, round(s.speed, 4)) for s in segs]
        assert speeds == [(0.0, 4.0, 0.25), (4.0, 6.0, 2.0), (6.0, 10.0, 0.25)]

    def test_empty_and_zero_work(self):
        assert yds_schedule([]) == []
        assert yds_schedule([Job("z", 0.0, 1.0, 0.0)]) == []

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            Job("bad", 1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            Job("bad", 0.0, 1.0, -1.0)


class TestOptimalityProperties:
    def make_jobs(self, seed, n=6):
        import numpy as np

        rng = np.random.default_rng(seed)
        jobs = []
        for i in range(n):
            arrival = float(rng.uniform(0, 10))
            deadline = arrival + float(rng.uniform(0.5, 6))
            jobs.append(Job(f"j{i}", arrival, deadline, float(rng.uniform(0.1, 3))))
        return jobs

    @pytest.mark.parametrize("seed", range(8))
    def test_work_conservation(self, seed):
        jobs = self.make_jobs(seed)
        segs = yds_schedule(jobs)
        assert total_work(segs) == pytest.approx(sum(j.work for j in jobs))

    @pytest.mark.parametrize("seed", range(8))
    def test_profile_is_feasible(self, seed):
        """Every window contains enough integral speed for its jobs."""
        jobs = self.make_jobs(seed)
        segs = yds_schedule(jobs)

        def capacity(t1, t2):
            return sum(
                s.speed * max(0.0, min(s.end, t2) - max(s.start, t1)) for s in segs
            )

        for t1 in {j.arrival for j in jobs}:
            for t2 in {j.deadline for j in jobs}:
                if t2 <= t1:
                    continue
                demand = sum(
                    j.work for j in jobs if j.arrival >= t1 and j.deadline <= t2
                )
                assert capacity(t1, t2) >= demand - 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_peak_speed_is_tight(self, seed):
        """Optimality: the peak speed equals the max interval density,
        which lower-bounds any feasible schedule."""
        jobs = self.make_jobs(seed)
        segs = yds_schedule(jobs)
        densities = []
        for t1 in {j.arrival for j in jobs}:
            for t2 in {j.deadline for j in jobs}:
                if t2 <= t1:
                    continue
                inside = [j for j in jobs if j.arrival >= t1 and j.deadline <= t2]
                if inside:
                    densities.append(sum(j.work for j in inside) / (t2 - t1))
        assert peak_speed(segs) == pytest.approx(max(densities))

    @pytest.mark.parametrize("seed", range(4))
    def test_beats_constant_speed_energy(self, seed):
        """YDS energy is no worse than the cheapest feasible flat profile."""
        jobs = self.make_jobs(seed)
        segs = yds_schedule(jobs)
        horizon_start = min(j.arrival for j in jobs)
        horizon_end = max(j.deadline for j in jobs)
        flat_speed = peak_speed(segs)  # flat must run at >= peak density
        flat_energy = (horizon_end - horizon_start) * flat_speed**3
        assert schedule_energy(segs) <= flat_energy + 1e-9


class TestPaperConnection:
    def test_periodic_atr_frames_yield_constant_speed(self):
        """For the paper's periodic workload, YDS = slowest-feasible.

        Each frame's PROC job is released when RECV ends and due when
        SEND must start; YDS on this job set is one flat speed equal to
        required_frequency / f_max.
        """
        from repro.apps.atr.profile import PAPER_PROFILE
        from repro.hw.link import PAPER_LINK_TIMING
        from repro.pipeline.schedule import required_frequency_mhz
        from repro.pipeline.tasks import Partition

        D = 2.3
        stage = Partition(PAPER_PROFILE, (1,)).stage(1)  # Node2
        recv = PAPER_LINK_TIMING.nominal_duration(stage.recv_bytes)
        send = PAPER_LINK_TIMING.nominal_duration(stage.send_bytes)
        jobs = [
            Job(
                f"frame{k}",
                arrival=k * D + recv,
                deadline=(k + 1) * D - send,
                work=stage.proc_seconds_at_max,
            )
            for k in range(5)
        ]
        segs = yds_schedule(jobs)
        speeds = {round(s.speed, 9) for s in segs}
        assert len(speeds) == 1
        required = required_frequency_mhz(
            stage, PAPER_LINK_TIMING, D, SA1100_TABLE
        )
        assert peak_speed(segs) * 206.4 == pytest.approx(required)


class TestDiscretization:
    def test_exact_level_single_fraction(self):
        segs = yds_schedule([Job("a", 0.0, 2.2, 1.1)])  # speed 0.5 = 103.2 MHz
        rows = discretize_to_table(segs, SA1100_TABLE)
        seg, low, high, fraction = rows[0]
        assert low.mhz == high.mhz == 103.2
        assert fraction == 1.0

    def test_between_levels_split(self):
        segs = yds_schedule([Job("a", 0.0, 2.0, 1.1)])  # 0.55 -> 113.5 MHz
        (seg, low, high, fraction), = discretize_to_table(segs, SA1100_TABLE)
        assert (low.mhz, high.mhz) == (103.2, 118.0)
        average = low.mhz * (1 - fraction) + high.mhz * fraction
        assert average == pytest.approx(0.55 * 206.4)

    def test_over_max_rejected(self):
        segs = yds_schedule([Job("a", 0.0, 1.0, 1.5)])  # speed 1.5 > 1.0
        with pytest.raises(ScheduleError):
            discretize_to_table(segs, SA1100_TABLE)
