"""Experiment specs and runner (fast variants on tiny batteries)."""

import pytest

from repro.core.experiments import (
    PAPER_EXPERIMENTS,
    ExperimentSpec,
    run_experiment,
    run_paper_suite,
    summarize_runs,
    _label_key,
)
from repro.core.policies import BaselinePolicy
from repro.errors import ConfigurationError
from tests.conftest import tiny_battery_factory


class TestSpecs:
    def test_all_eight_experiments_defined(self):
        assert set(PAPER_EXPERIMENTS) == {"0A", "0B", "1", "1A", "2", "2A", "2B", "2C"}

    def test_paper_numbers_recorded(self):
        assert PAPER_EXPERIMENTS["2C"].paper.t_hours == 17.82
        assert PAPER_EXPERIMENTS["2C"].paper.rnorm_percent == 145.0

    def test_node_counts(self):
        assert PAPER_EXPERIMENTS["1"].n_nodes == 1
        assert PAPER_EXPERIMENTS["2"].n_nodes == 2
        assert PAPER_EXPERIMENTS["0A"].n_nodes == 1

    def test_2b_is_recovery(self):
        assert PAPER_EXPERIMENTS["2B"].recovery
        assert not PAPER_EXPERIMENTS["2C"].recovery

    def test_2c_rotates_every_100_frames(self):
        assert PAPER_EXPERIMENTS["2C"].rotation_period == 100


class TestRunner:
    def test_no_io_run(self):
        run = run_experiment(
            PAPER_EXPERIMENTS["0A"], battery_factory=tiny_battery_factory
        )
        assert run.frames > 0
        assert run.t_hours > 0
        assert run.pipeline is None
        assert run.death_times_s

    def test_no_io_half_speed_does_more_work(self):
        fast = run_experiment(
            PAPER_EXPERIMENTS["0A"], battery_factory=tiny_battery_factory
        )
        slow = run_experiment(
            PAPER_EXPERIMENTS["0B"], battery_factory=tiny_battery_factory
        )
        # The paper's 0A/0B contrast: half speed completes more frames.
        assert slow.frames > fast.frames
        assert slow.t_hours > fast.t_hours

    def test_pipeline_run_returns_result(self):
        run = run_experiment(
            PAPER_EXPERIMENTS["2"],
            battery_factory=tiny_battery_factory,
        )
        assert run.pipeline is not None
        assert run.frames == run.pipeline.frames_completed

    def test_max_frames_truncation(self):
        run = run_experiment(
            PAPER_EXPERIMENTS["1"],
            battery_factory=tiny_battery_factory,
            max_frames=5,
        )
        assert run.frames == 5

    def test_spec_without_policy_rejected(self):
        spec = ExperimentSpec(label="x", description="bad", policy=None)
        with pytest.raises(ConfigurationError):
            run_experiment(spec)

    def test_no_io_without_level_rejected(self):
        spec = ExperimentSpec(label="x", description="bad", io_enabled=False)
        with pytest.raises(ConfigurationError):
            run_experiment(spec)

    def test_unknown_suite_label_rejected(self):
        with pytest.raises(ConfigurationError):
            run_paper_suite(["7Z"])


class TestSharedRecorderDeprecation:
    """The shared-instance recorder path: deprecated but not broken.

    Passing a caller-owned TraceRecorder/Telemetry into run_paper_suite
    must warn (it forces serial, uncached execution) while still
    producing results identical to the preferred per-run recorder path.
    """

    _KW = dict(battery_factory=tiny_battery_factory, max_frames=10)

    def test_shared_trace_recorder_warns(self):
        from repro.sim import TraceRecorder

        with pytest.warns(DeprecationWarning, match="shared"):
            run_paper_suite(["2"], trace=TraceRecorder(), **self._KW)

    def test_shared_telemetry_warns(self):
        from repro.obs import Telemetry

        with pytest.warns(DeprecationWarning, match="per-run recorders"):
            run_paper_suite(["2"], jobs=4, telemetry=Telemetry(), **self._KW)

    def test_per_run_bool_flags_do_not_warn(self):
        import warnings as w

        with w.catch_warnings():
            w.simplefilter("error", DeprecationWarning)
            run_paper_suite(["2"], trace=True, telemetry=True, **self._KW)

    def test_shared_path_results_match_per_run_path(self):
        """Identical simulation outcomes and telemetry either way."""
        from repro.obs import Telemetry
        from repro.sim import TraceRecorder

        shared_obs = Telemetry()
        shared_trace = TraceRecorder()
        with pytest.warns(DeprecationWarning):
            shared = run_paper_suite(
                ["2"], trace=shared_trace, telemetry=shared_obs, **self._KW
            )["2"]
        per_run = run_paper_suite(
            ["2"], trace=True, telemetry=True, **self._KW
        )["2"]

        assert shared.frames == per_run.frames
        assert shared.t_hours == per_run.t_hours
        assert shared.pipeline.death_times_s == per_run.pipeline.death_times_s
        assert shared.pipeline.late_results == per_run.pipeline.late_results
        # The shared objects were filled with the same telemetry the
        # per-run recorders captured.
        assert shared_obs.events.as_dict() == per_run.obs.events.as_dict()
        assert shared_obs.metrics.as_dict() == per_run.obs.metrics.as_dict()
        assert shared_trace.as_dict() == per_run.trace.as_dict()


class TestMetricsAndSummary:
    def test_metrics_use_paper_formula(self):
        run = run_experiment(
            PAPER_EXPERIMENTS["2"],
            battery_factory=tiny_battery_factory,
            max_frames=100,
        )
        m = run.metrics(baseline_hours=1.0)
        assert m.t_hours == pytest.approx((100 * 2.3 + 2.3) / 3600.0)
        assert m.tnorm_hours == pytest.approx(m.t_hours / 2)

    def test_summarize_orders_labels(self):
        runs = run_paper_suite(
            ["1", "2", "0A"],
            battery_factory=tiny_battery_factory,
            max_frames=5,
        )
        rows = summarize_runs(runs)
        assert [m.label for m in rows] == ["0A", "1", "2"]

    def test_summarize_rnorm_against_baseline(self):
        runs = run_paper_suite(
            ["1", "2"], battery_factory=tiny_battery_factory
        )
        rows = {m.label: m for m in summarize_runs(runs)}
        assert rows["1"].rnorm == pytest.approx(1.0)
        assert rows["2"].rnorm is not None

    def test_label_sort_key(self):
        labels = ["2C", "0A", "1A", "2", "1", "0B", "2B", "2A"]
        assert sorted(labels, key=_label_key) == [
            "0A", "0B", "1", "1A", "2", "2A", "2B", "2C",
        ]


class TestTinyScaleOrdering:
    """The paper's qualitative ordering must hold even on a small cell."""

    @pytest.fixture(scope="class")
    def runs(self):
        return run_paper_suite(
            ["1", "1A", "2", "2A", "2C"],
            battery_factory=tiny_battery_factory,
        )

    def test_dvs_during_io_beats_baseline(self, runs):
        assert runs["1A"].frames > runs["1"].frames

    def test_partitioning_doubles_absolute_life(self, runs):
        assert runs["2"].t_hours > 1.5 * runs["1"].t_hours

    def test_rotation_is_best_two_node_technique(self, runs):
        assert runs["2C"].frames > runs["2A"].frames > runs["2"].frames
