"""Configuration optimizer (on tiny cells for speed)."""

import pytest

from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.optimizer import (
    optimize_configuration,
    predict_rotation_lifetime_hours,
)
from repro.core.policies import DVSDuringIOPolicy, SlowestFeasiblePolicy
from repro.errors import ConfigurationError
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition
from tests.conftest import TINY_KIBAM

D = 2.3


@pytest.fixture(scope="module")
def ranked():
    return optimize_configuration(PAPER_PROFILE, max_stages=3, battery=TINY_KIBAM)


class TestRanking:
    def test_paper_configuration_wins_among_multinode(self, ranked):
        """Scheme 1 + DVS-I/O + rotation tops every multi-node option.

        (At this reduced capacity the single node + DVS-I/O edges ahead
        on Tnorm — the recovery effect is capacity-dependent, as the
        battery-model ablation shows; the paper-scale check below
        confirms the full-space winner.)"""
        best_multi = next(c for c in ranked if c.n_stages >= 2)
        assert best_multi.cuts == (1,)
        assert best_multi.dvs_during_io
        assert best_multi.rotation

    def test_paper_configuration_wins_at_paper_scale(self):
        """At the calibrated capacity, scheme 1 + DVS-I/O + rotation is
        the global optimum — the optimizer agrees with the paper."""
        ranked = optimize_configuration(PAPER_PROFILE, max_stages=2)
        best = ranked[0]
        assert best.cuts == (1,)
        assert best.dvs_during_io
        assert best.rotation
        # And its predicted lifetime matches the measured (2C) band.
        assert best.lifetime_hours == pytest.approx(19.6, abs=0.5)

    def test_sorted_by_normalized_lifetime(self, ranked):
        values = [c.normalized_hours for c in ranked]
        assert values == sorted(values, reverse=True)

    def test_absolute_objective_prefers_depth(self):
        ranked = optimize_configuration(
            PAPER_PROFILE, max_stages=3, battery=TINY_KIBAM, objective="absolute"
        )
        # More batteries always buy more absolute uptime with rotation.
        assert ranked[0].n_stages == 3
        assert ranked[0].rotation

    def test_rotation_always_beats_same_config_without(self, ranked):
        by_key = {
            (c.cuts, c.dvs_during_io, c.rotation): c.lifetime_hours for c in ranked
        }
        for (cuts, dvs, rot), hours in by_key.items():
            if rot:
                assert hours >= by_key[(cuts, dvs, False)]

    def test_infeasible_partitions_skipped(self, ranked):
        # Scheme 3 (cut at block 3) cannot meet D and must be absent.
        assert all(c.cuts != (3,) for c in ranked)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError):
            optimize_configuration(PAPER_PROFILE, objective="vibes")

    def test_impossible_deadline_raises(self):
        with pytest.raises(ConfigurationError):
            optimize_configuration(
                PAPER_PROFILE, deadline_s=1.2, battery=TINY_KIBAM
            )


class TestRotationPrediction:
    def test_matches_engine(self):
        """The analytical rotation lifetime tracks the DES engine."""
        from repro.pipeline.engine import PipelineEngine
        from tests.pipeline.test_engine import make_config

        partition = Partition(PAPER_PROFILE, (1,))
        plans = [
            plan_node(a, PAPER_LINK_TIMING, D, SA1100_TABLE)
            for a in partition.assignments
        ]
        roles = DVSDuringIOPolicy(SlowestFeasiblePolicy()).role_configs(
            plans, SA1100_TABLE
        )
        predicted = predict_rotation_lifetime_hours(roles, battery=TINY_KIBAM)

        result = PipelineEngine(
            make_config(cuts=(1,), rotation_period=10)
        ).run()
        engine_hours = result.last_result_s / 3600.0
        assert engine_hours == pytest.approx(predicted, rel=0.02)

    def test_balanced_lifetime_between_stage_extremes(self):
        partition = Partition(PAPER_PROFILE, (1,))
        plans = [
            plan_node(a, PAPER_LINK_TIMING, D, SA1100_TABLE)
            for a in partition.assignments
        ]
        roles = DVSDuringIOPolicy(SlowestFeasiblePolicy()).role_configs(
            plans, SA1100_TABLE
        )
        from repro.core.prediction import predict_first_death

        _, first, per_stage = predict_first_death(roles, battery=TINY_KIBAM)
        balanced = predict_rotation_lifetime_hours(roles, battery=TINY_KIBAM)
        assert first < balanced < max(per_stage.values()) * 2
