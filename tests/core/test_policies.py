"""DVS policies."""

import pytest

from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.policies import (
    BaselinePolicy,
    DVSDuringIOPolicy,
    PinnedLevelsPolicy,
    SlowestFeasiblePolicy,
)
from repro.errors import ConfigurationError
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition


@pytest.fixture
def plans():
    partition = Partition(PAPER_PROFILE, [1])
    return [
        plan_node(a, PAPER_LINK_TIMING, 2.3, SA1100_TABLE)
        for a in partition.assignments
    ]


class TestBaselinePolicy:
    def test_everything_at_max(self, plans):
        roles = BaselinePolicy().role_configs(plans, SA1100_TABLE)
        for rc in roles:
            assert rc.comp_level.mhz == 206.4
            assert rc.io_level.mhz == 206.4


class TestSlowestFeasible:
    def test_uses_plan_levels(self, plans):
        roles = SlowestFeasiblePolicy().role_configs(plans, SA1100_TABLE)
        assert roles[0].comp_level.mhz == 59.0
        assert roles[1].comp_level.mhz == 103.2

    def test_io_follows_comp(self, plans):
        roles = SlowestFeasiblePolicy().role_configs(plans, SA1100_TABLE)
        for rc in roles:
            assert rc.io_level == rc.comp_level


class TestDVSDuringIO:
    def test_io_dropped_to_min(self, plans):
        roles = DVSDuringIOPolicy(SlowestFeasiblePolicy()).role_configs(
            plans, SA1100_TABLE
        )
        for rc in roles:
            assert rc.io_level.mhz == 59.0

    def test_comp_untouched(self, plans):
        inner = SlowestFeasiblePolicy()
        wrapped = DVSDuringIOPolicy(inner).role_configs(plans, SA1100_TABLE)
        plain = inner.role_configs(plans, SA1100_TABLE)
        for a, b in zip(wrapped, plain):
            assert a.comp_level == b.comp_level

    def test_describe_mentions_both(self):
        assert "DVSDuringIO" in DVSDuringIOPolicy(BaselinePolicy()).describe()
        assert "Baseline" in DVSDuringIOPolicy(BaselinePolicy()).describe()


class TestPinnedLevels:
    def test_paper_2b_levels(self, plans):
        roles = PinnedLevelsPolicy([73.7, 118.0]).role_configs(plans, SA1100_TABLE)
        assert roles[0].comp_level.mhz == 73.7
        assert roles[1].comp_level.mhz == 118.0

    def test_explicit_io_levels(self, plans):
        roles = PinnedLevelsPolicy([73.7, 118.0], io_mhz=[59.0, 59.0]).role_configs(
            plans, SA1100_TABLE
        )
        assert all(rc.io_level.mhz == 59.0 for rc in roles)

    def test_count_mismatch_rejected(self, plans):
        with pytest.raises(ConfigurationError):
            PinnedLevelsPolicy([206.4]).role_configs(plans, SA1100_TABLE)

    def test_io_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            PinnedLevelsPolicy([206.4, 118.0], io_mhz=[59.0])

    def test_unknown_frequency_rejected(self, plans):
        with pytest.raises(ConfigurationError):
            PinnedLevelsPolicy([100.0, 118.0]).role_configs(plans, SA1100_TABLE)
