"""§4.5 metrics."""

import pytest

from repro.core.metrics import (
    ExperimentMetrics,
    battery_life_hours,
    normalized_battery_life_hours,
    normalized_ratio,
)
from repro.errors import ConfigurationError


class TestBatteryLife:
    def test_paper_baseline_identity(self):
        """T(1) = F(1) * D: 9600 frames at 2.3 s is 6.13 h."""
        assert battery_life_hours(9600, 2.3, 1) == pytest.approx(6.13, abs=0.01)

    def test_pipeline_fill_term(self):
        t1 = battery_life_hours(1000, 2.3, 1)
        t2 = battery_life_hours(1000, 2.3, 2)
        assert t2 - t1 == pytest.approx(2.3 / 3600.0)

    def test_normalized_divides_by_nodes(self):
        assert normalized_battery_life_hours(1000, 2.3, 2) == pytest.approx(
            battery_life_hours(1000, 2.3, 2) / 2
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            battery_life_hours(-1, 2.3, 1)
        with pytest.raises(ConfigurationError):
            battery_life_hours(1, 0.0, 1)
        with pytest.raises(ConfigurationError):
            battery_life_hours(1, 2.3, 0)


class TestNormalizedRatio:
    def test_paper_experiment_2(self):
        """Paper: Tnorm(2) = 7.05 h against T(1) = 6.13 h -> 115%."""
        assert normalized_ratio(7.05, 6.13) == pytest.approx(1.15, abs=0.01)

    def test_baseline_is_unity(self):
        assert normalized_ratio(6.13, 6.13) == 1.0

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            normalized_ratio(1.0, 0.0)


class TestExperimentMetrics:
    def test_from_frames_builds_row(self):
        m = ExperimentMetrics.from_frames("2", 22100, 2.3, 2, baseline_hours=6.13)
        assert m.t_hours == pytest.approx(14.12, abs=0.01)
        assert m.tnorm_hours == pytest.approx(7.06, abs=0.01)
        assert m.rnorm == pytest.approx(1.152, abs=0.005)

    def test_no_baseline_no_rnorm(self):
        m = ExperimentMetrics.from_frames("0A", 11500, 1.1, 1)
        assert m.rnorm is None

    def test_as_row_shape(self):
        m = ExperimentMetrics.from_frames("1", 9600, 2.3, 1, baseline_hours=6.13)
        row = m.as_row()
        assert row["experiment"] == "1"
        assert row["Rnorm_percent"] == pytest.approx(100.0, abs=0.5)
        assert set(row) == {
            "experiment",
            "nodes",
            "frames",
            "T_hours",
            "Tnorm_hours",
            "Rnorm_percent",
        }
