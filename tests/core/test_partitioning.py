"""Partitioning analysis: the Fig. 8 reproduction."""

import pytest

from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.partitioning import (
    analyze_partitions,
    estimate_average_current_ma,
    select_best,
)
from repro.errors import InfeasiblePartitionError
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.hw.power import PAPER_POWER_MODEL

D = 2.3


@pytest.fixture(scope="module")
def analyses():
    return analyze_partitions(PAPER_PROFILE, 2, PAPER_LINK_TIMING, D, SA1100_TABLE)


class TestFig8:
    def test_three_schemes(self, analyses):
        assert len(analyses) == 3

    def test_scheme1_levels(self, analyses):
        s1 = analyses[0]
        assert s1.feasible
        assert s1.stages[0].level.mhz == 59.0
        assert s1.stages[1].level.mhz == 103.2

    def test_scheme1_payloads(self, analyses):
        s1 = analyses[0]
        assert s1.stages[0].comm_payload_kb == pytest.approx(10.7)
        assert s1.stages[1].comm_payload_kb == pytest.approx(0.7)

    def test_scheme2_feasible_but_fast(self, analyses):
        s2 = analyses[1]
        assert s2.feasible
        # Paper: 191.7 / 132.7 MHz. Node1 derives exactly; Node2's level
        # depends on the profile normalization and lands within one step.
        assert s2.stages[0].level.mhz == 191.7
        assert s2.stages[1].level.mhz in (118.0, 132.7)

    def test_scheme3_infeasible(self, analyses):
        s3 = analyses[2]
        assert not s3.feasible
        assert s3.stages[0].plan is None
        # Paper: "not capable ... unless clocked at 380 MHz".
        assert s3.stages[0].required_mhz > 206.4

    def test_rows_render(self, analyses):
        rows = [a.as_row() for a in analyses]
        assert rows[0]["node1_mhz"] == 59.0
        assert "infeasible" in str(rows[2]["node1_mhz"])


class TestSelection:
    def test_paper_choice_is_scheme1(self, analyses):
        """The paper's energy criterion (§5.3) selects scheme 1."""
        best = select_best(analyses)
        assert best is analyses[0]

    def test_max_current_criterion_differs(self, analyses):
        """Under DVS-during-I/O the critical-battery criterion prefers a
        scheme whose heavy node idles more — a model prediction the
        ablation benches explore."""
        best = select_best(
            analyses, PAPER_POWER_MODEL, D, criterion="max-current"
        )
        assert best.feasible

    def test_max_current_requires_model(self, analyses):
        with pytest.raises(ValueError):
            select_best(analyses, criterion="max-current")

    def test_unknown_criterion_rejected(self, analyses):
        with pytest.raises(ValueError):
            select_best(analyses, criterion="magic")

    def test_no_feasible_raises(self):
        tight = analyze_partitions(
            PAPER_PROFILE, 2, PAPER_LINK_TIMING, 1.3, SA1100_TABLE
        )
        with pytest.raises(InfeasiblePartitionError):
            select_best(tight)


class TestCurrentEstimates:
    def test_scheme1_stage_currents(self, analyses):
        currents = estimate_average_current_ma(analyses[0], PAPER_POWER_MODEL, D)
        assert len(currents) == 2
        # Node2 (heavy compute at 103.2) draws more on average than
        # Node1 (mostly I/O at 59) — the imbalance the paper blames.
        assert currents[1] > currents[0]

    def test_infeasible_scheme_rejected(self, analyses):
        with pytest.raises(InfeasiblePartitionError):
            estimate_average_current_ma(analyses[2], PAPER_POWER_MODEL, D)

    def test_dvs_during_io_lowers_estimate(self, analyses):
        with_dvs = estimate_average_current_ma(
            analyses[0], PAPER_POWER_MODEL, D, dvs_during_io=True
        )
        without = estimate_average_current_ma(
            analyses[0], PAPER_POWER_MODEL, D, dvs_during_io=False
        )
        assert sum(with_dvs) < sum(without)


class TestOverheadPropagation:
    def test_ack_overhead_changes_levels(self):
        plain = analyze_partitions(
            PAPER_PROFILE, 2, PAPER_LINK_TIMING, D, SA1100_TABLE
        )
        acked = analyze_partitions(
            PAPER_PROFILE, 2, PAPER_LINK_TIMING, D, SA1100_TABLE, overhead_s=0.18
        )
        # With per-frame ack overhead, the heavy node must clock up —
        # the §5.4 observation that recovery "forces an increase of
        # computation speed".
        assert (
            acked[0].stages[1].level.mhz > plain[0].stages[1].level.mhz
        )
