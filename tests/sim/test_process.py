"""Process coroutines: completion, composition, interrupts."""

import pytest

from repro.errors import SimulationError
from repro.sim import Interrupt, Simulator


class TestBasics:
    def test_process_returns_value(self, sim):
        def body(sim):
            yield sim.timeout(1.0)
            return "done"

        p = sim.process(body(sim))
        sim.run()
        assert p.value == "done"

    def test_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_is_alive_tracks_state(self, sim):
        def body(sim):
            yield sim.timeout(1.0)

        p = sim.process(body(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_yielding_non_event_fails_process(self, sim):
        def body(sim):
            yield 42

        p = sim.process(body(sim))
        sim.run()
        assert not p.ok
        assert isinstance(p.exception, SimulationError)

    def test_exception_propagates_to_process_event(self, sim):
        def body(sim):
            yield sim.timeout(1.0)
            raise ValueError("inner")

        p = sim.process(body(sim))
        sim.run()
        assert isinstance(p.exception, ValueError)

    def test_yield_event_from_other_sim_fails(self, sim):
        other = Simulator()

        def body(sim):
            yield other.timeout(1.0)

        p = sim.process(body(sim))
        sim.run()
        assert not p.ok


class TestComposition:
    def test_process_waits_on_process(self, sim):
        def child(sim):
            yield sim.timeout(2.0)
            return 21

        def parent(sim):
            value = yield sim.process(child(sim))
            return value * 2

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == 42

    def test_yield_from_subgenerator(self, sim):
        def sub(sim):
            yield sim.timeout(1.0)
            return "sub"

        def body(sim):
            res = yield from sub(sim)
            return res + "-top"

        p = sim.process(body(sim))
        sim.run()
        assert p.value == "sub-top"

    def test_failed_event_raises_inside_process(self, sim):
        bad = sim.event()

        def body(sim):
            try:
                yield bad
            except RuntimeError:
                return "caught"

        p = sim.process(body(sim))
        bad.fail(RuntimeError("x"))
        sim.run()
        assert p.value == "caught"


class TestInterrupt:
    def test_interrupt_delivered_as_exception(self, sim):
        def body(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                return ("interrupted", intr.cause)

        p = sim.process(body(sim))
        sim.timeout(1.0).add_callback(lambda _e: p.interrupt("why"))
        sim.run(until=p)
        assert p.value == ("interrupted", "why")
        assert sim.now == 1.0  # resumed immediately, not at the timeout

    def test_unhandled_interrupt_ends_process_with_cause(self, sim):
        def body(sim):
            yield sim.timeout(100.0)

        p = sim.process(body(sim))
        sim.timeout(1.0).add_callback(lambda _e: p.interrupt("cause"))
        sim.run()
        assert p.ok
        assert p.value == "cause"

    def test_interrupt_finished_process_rejected(self, sim):
        def body(sim):
            yield sim.timeout(1.0)

        p = sim.process(body(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_detaches_from_event(self, sim):
        """The originally-awaited event firing later must not resume a
        process that already handled an interrupt and moved on."""
        long = sim.timeout(5.0, "late")
        resumed_with = []

        def body(sim):
            try:
                value = yield long
            except Interrupt:
                value = yield sim.timeout(10.0, "after-interrupt")
            resumed_with.append(value)

        p = sim.process(body(sim))
        sim.timeout(1.0).add_callback(lambda _e: p.interrupt())
        sim.run()
        assert resumed_with == ["after-interrupt"]
