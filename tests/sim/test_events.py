"""Event life cycle and conditions."""

import pytest

from repro.errors import SimulationError
from repro.sim import Event, Simulator, Timeout


class TestEventLifecycle:
    def test_starts_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_sets_value(self, sim):
        ev = sim.event().succeed(42)
        assert ev.triggered
        assert ev.value == 42

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_double_trigger_rejected(self, sim):
        ev = sim.event().succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_fail_stores_exception(self, sim):
        exc = RuntimeError("boom")
        ev = sim.event().fail(exc)
        assert ev.exception is exc
        assert not ev.ok
        with pytest.raises(RuntimeError):
            _ = ev.value

    def test_processed_after_run(self, sim):
        ev = sim.event().succeed("x")
        sim.run()
        assert ev.processed

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event().succeed("x")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_delayed_succeed(self, sim):
        ev = sim.event().succeed("later", delay=5.0)
        sim.run()
        assert sim.now == 5.0
        assert ev.processed


class TestTimeout:
    def test_fires_at_delay(self, sim):
        t = Timeout(sim, 2.5, value="v")
        sim.run()
        assert sim.now == 2.5
        assert t.value == "v"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            Timeout(sim, -1.0)

    def test_zero_delay_allowed(self, sim):
        t = Timeout(sim, 0.0)
        sim.run()
        assert t.processed
        assert sim.now == 0.0


class TestAnyOf:
    def test_fires_on_first(self, sim):
        a, b = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")
        cond = sim.any_of([a, b])
        sim.run(until=cond)
        assert sim.now == 1.0
        assert a in cond.value and b not in cond.value

    def test_value_maps_fired_events(self, sim):
        a = sim.timeout(1.0, "a")
        cond = sim.any_of([a, sim.timeout(3.0)])
        sim.run(until=cond)
        assert cond.value[a] == "a"

    def test_failed_constituent_fails_condition(self, sim):
        a = sim.event()
        cond = sim.any_of([a, sim.timeout(10.0)])
        a.fail(RuntimeError("x"))
        sim.run(until=cond)
        assert not cond.ok

    def test_mixed_simulators_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            sim.any_of([sim.timeout(1), other.timeout(1)])


class TestAllOf:
    def test_waits_for_all(self, sim):
        a, b = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")
        cond = sim.all_of([a, b])
        sim.run(until=cond)
        assert sim.now == 2.0
        assert cond.value == {a: "a", b: "b"}

    def test_empty_fires_immediately(self, sim):
        cond = sim.all_of([])
        sim.run()
        assert cond.processed

    def test_already_processed_constituents(self, sim):
        a = sim.timeout(1.0, "a")
        sim.run()
        cond = sim.all_of([a])
        sim.run()
        assert cond.value == {a: "a"}
