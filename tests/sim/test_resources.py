"""Channels and counting resources."""

import pytest

from repro.errors import SimulationError
from repro.sim import Channel, Resource


class TestChannel:
    def test_put_then_get(self, sim):
        ch = Channel(sim)
        got = []

        def consumer(sim, ch):
            item = yield ch.get()
            got.append(item)

        sim.process(consumer(sim, ch))
        ch.put("x")
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self, sim):
        ch = Channel(sim)
        times = []

        def consumer(sim, ch):
            yield ch.get()
            times.append(sim.now)

        def producer(sim, ch):
            yield sim.timeout(3.0)
            yield ch.put("late")

        sim.process(consumer(sim, ch))
        sim.process(producer(sim, ch))
        sim.run()
        assert times == [3.0]

    def test_fifo_order(self, sim):
        ch = Channel(sim)
        for i in range(5):
            ch.put(i)
        got = []

        def consumer(sim, ch):
            for _ in range(5):
                got.append((yield ch.get()))

        sim.process(consumer(sim, ch))
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_len_counts_queued(self, sim):
        ch = Channel(sim)
        ch.put(1)
        ch.put(2)
        assert len(ch) == 2

    def test_try_get(self, sim):
        ch = Channel(sim)
        assert ch.try_get() == (False, None)
        ch.put("a")
        assert ch.try_get() == (True, "a")

    def test_bounded_put_blocks(self, sim):
        ch = Channel(sim, capacity=1)
        done = []

        def producer(sim, ch):
            yield ch.put("a")
            yield ch.put("b")  # blocks until a consumer frees space
            done.append(sim.now)

        def consumer(sim, ch):
            yield sim.timeout(5.0)
            yield ch.get()

        sim.process(producer(sim, ch))
        sim.process(consumer(sim, ch))
        sim.run()
        assert done == [5.0]
        assert len(ch) == 1  # "b" made it in

    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Channel(sim, capacity=0)

    def test_waiting_getters_counted(self, sim):
        ch = Channel(sim)

        def consumer(sim, ch):
            yield ch.get()

        sim.process(consumer(sim, ch))
        sim.run()
        assert ch.waiting_getters == 1


class TestResource:
    def test_request_release(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def user(sim, res, tag, hold):
            yield res.request()
            order.append(("in", tag, sim.now))
            yield sim.timeout(hold)
            res.release()
            order.append(("out", tag, sim.now))

        sim.process(user(sim, res, "a", 2.0))
        sim.process(user(sim, res, "b", 1.0))
        sim.run()
        assert order == [
            ("in", "a", 0.0),
            ("out", "a", 2.0),
            ("in", "b", 2.0),
            ("out", "b", 3.0),
        ]

    def test_capacity_allows_concurrency(self, sim):
        res = Resource(sim, capacity=2)
        active = []
        peak = []

        def user(sim, res):
            yield res.request()
            active.append(1)
            peak.append(len(active))
            yield sim.timeout(1.0)
            active.pop()
            res.release()

        for _ in range(4):
            sim.process(user(sim, res))
        sim.run()
        assert max(peak) == 2

    def test_release_without_request_raises(self, sim):
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_queued_counter(self, sim):
        res = Resource(sim, capacity=1)

        def holder(sim, res):
            yield res.request()
            yield sim.timeout(100.0)

        def waiter(sim, res):
            yield res.request()

        sim.process(holder(sim, res))
        sim.process(waiter(sim, res))
        sim.run(until=1.0)
        assert res.in_use == 1
        assert res.queued == 1

    def test_capacity_validation(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)
