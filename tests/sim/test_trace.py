"""Trace recording."""

import pytest

from repro.sim import Segment, TraceRecorder


@pytest.fixture
def trace():
    t = TraceRecorder()
    t.add("n1", 0.0, 1.0, "recv", frequency_mhz=59.0, current_ma=30.0)
    t.add("n1", 1.0, 2.0, "proc", frequency_mhz=206.4, current_ma=130.0)
    t.add("n2", 0.5, 1.5, "idle", frequency_mhz=59.0, current_ma=30.0)
    return t


class TestSegment:
    def test_duration(self):
        seg = Segment("a", 1.0, 3.5, "proc")
        assert seg.duration == 2.5

    def test_charge(self):
        seg = Segment("a", 0.0, 2.0, "proc", current_ma=100.0)
        assert seg.charge_mas == 200.0


class TestRecorder:
    def test_actors_in_first_seen_order(self, trace):
        assert trace.actors == ["n1", "n2"]

    def test_segments_per_actor(self, trace):
        assert len(trace.segments("n1")) == 2
        assert len(trace.segments("n2")) == 1

    def test_unknown_actor_empty(self, trace):
        assert trace.segments("nope") == []

    def test_total_charge(self, trace):
        assert trace.total_charge_mas("n1") == pytest.approx(30.0 + 130.0)

    def test_busy_time_filters_activities(self, trace):
        assert trace.busy_time("n1", {"proc"}) == 1.0
        assert trace.busy_time("n1", {"recv", "proc"}) == 2.0

    def test_disabled_recorder_ignores(self):
        t = TraceRecorder(enabled=False)
        t.add("a", 0.0, 1.0, "proc")
        assert t.actors == []

    def test_horizon_truncates(self):
        t = TraceRecorder(horizon=10.0)
        t.add("a", 5.0, 6.0, "proc")
        t.add("a", 11.0, 12.0, "proc")  # past horizon, dropped
        assert len(t.segments("a")) == 1

    def test_clear(self, trace):
        trace.clear()
        assert trace.actors == []

    def test_all_segments(self, trace):
        assert len(trace.all_segments()) == 3
