"""Simulator clock, run modes, determinism."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def collector(sim, delays, log):
    for d in delays:
        yield sim.timeout(d)
        log.append(sim.now)


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_advances_with_events(self, sim):
        log = []
        sim.process(collector(sim, [1.0, 2.0], log))
        sim.run()
        assert log == [1.0, 3.0]

    def test_peek_empty(self, sim):
        assert sim.peek() == float("inf")

    def test_peek_shows_next(self, sim):
        sim.timeout(4.5)
        assert sim.peek() == 4.5

    def test_step_on_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()


class TestRunModes:
    def test_run_until_time_advances_clock_exactly(self, sim):
        sim.timeout(1.0)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_time_excludes_later_events(self, sim):
        log = []
        sim.process(collector(sim, [1.0, 100.0], log))
        sim.run(until=5.0)
        assert log == [1.0]

    def test_run_until_past_raises(self, sim):
        sim.timeout(1.0)
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=2.0)

    def test_run_until_event(self, sim):
        target = sim.timeout(3.0)
        sim.timeout(10.0)
        sim.run(until=target)
        assert sim.now == 3.0

    def test_run_until_event_never_fires_raises(self, sim):
        pending = sim.event()  # never triggered
        sim.timeout(1.0)
        with pytest.raises(SimulationError):
            sim.run(until=pending)

    def test_events_processed_counter(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert sim.events_processed == 2


class TestDeterminism:
    def test_same_timestamp_fifo_order(self, sim):
        order = []
        for tag in "abc":
            ev = sim.timeout(1.0, tag)
            ev.add_callback(lambda e: order.append(e.value))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_replay_identical(self):
        def trace_run():
            s = Simulator()
            log = []
            s.process(collector(s, [0.5] * 10, log))
            s.process(collector(s, [0.3] * 10, log))
            s.run()
            return log

        assert trace_run() == trace_run()

    def test_schedule_into_past_rejected(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            sim.schedule(ev, delay=-0.1)


class TestRunUntilHorizonEdges:
    """Pin the horizon semantics the inlined run loops must preserve."""

    def test_event_exactly_at_horizon_processed(self, sim):
        ev = sim.timeout(5.0)
        sim.run(until=5.0)
        assert ev.processed
        assert sim.now == 5.0

    def test_horizon_equal_to_now_processes_due_events(self, sim):
        sim.run(until=5.0)
        ev = sim.timeout(0.0)
        sim.run(until=5.0)
        assert ev.processed
        assert sim.now == 5.0

    def test_horizon_equal_to_now_with_empty_queue_is_noop(self, sim):
        sim.run(until=5.0)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_event_spawned_at_horizon_during_run_processed(self, sim):
        log = []

        def spawner(sim):
            yield sim.timeout(5.0)
            ev = sim.timeout(0.0)
            ev.add_callback(lambda e: log.append(sim.now))
            yield ev

        sim.process(spawner(sim))
        sim.run(until=5.0)
        assert log == [5.0]

    def test_run_matches_step_by_step(self):
        def build():
            s = Simulator()
            log = []
            s.process(collector(s, [0.5, 0.5, 1.0], log))
            s.process(collector(s, [1.0, 1.0], log))
            return s, log

        stepped, log_a = build()
        while stepped.peek() <= 2.0:
            stepped.step()
        ran, log_b = build()
        ran.run(until=2.0)
        assert log_a == log_b
        assert stepped.events_processed == ran.events_processed

    def test_counter_includes_inlined_dispatch(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run(until=1.5)
        assert sim.events_processed == 1
        sim.run()
        assert sim.events_processed == 2
