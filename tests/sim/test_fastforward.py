"""Steady-state epoch fast-forward: exact-vs-fast equivalence.

Tier-1 tests run the paper experiments on the tiny 25 mAh battery so
both modes finish in well under a second each; the contract checked is
the one the engine promises — identical frame counts, lifetimes within
0.1%, counters advanced arithmetically to the same totals — plus the
gating rules (stochastic timing never jumps, tracing refuses fast
mode) and the cache/registry aliasing guarantees. The full-scale
eight-experiment identity run is tier2 (``-m tier2``).
"""

from __future__ import annotations

import pytest

from repro.core.experiments import (
    PAPER_EXPERIMENTS,
    experiment_fingerprint,
    run_experiment,
    run_paper_suite,
)
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.hw.link import TransactionTiming

from tests.conftest import tiny_battery_factory

TINY = dict(battery_factory=tiny_battery_factory)


def _pair(label: str, **kwargs):
    """One spec run in both modes on the tiny battery."""
    spec = PAPER_EXPERIMENTS[label]
    exact = run_experiment(spec, mode="exact", **TINY, **kwargs)
    fast = run_experiment(spec, mode="fast", **TINY, **kwargs)
    return exact, fast


def _rel(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), 1e-12)


class TestNoIOEquivalence:
    """§6.1 runs: the degenerate one-segment cycle, jumped analytically."""

    @pytest.mark.parametrize("label", ["0A", "0B"])
    def test_frames_identical_and_lifetime_close(self, label):
        exact, fast = _pair(label)
        assert fast.frames == exact.frames
        assert _rel(fast.t_hours, exact.t_hours) < 1e-3

    def test_fast_dispatches_far_fewer_events(self):
        exact, fast = _pair("0A")
        assert fast.sim_events < exact.sim_events / 10

    def test_ff_epoch_event_records_the_jump(self):
        run = run_experiment(
            PAPER_EXPERIMENTS["0A"], mode="fast", telemetry=True, **TINY
        )
        epochs = run.obs.events.of_kind("ff.epoch")
        assert len(epochs) == 1
        (e,) = epochs
        assert e.data["frames"] == e.data["periods"] > 0
        assert e.data["t1"] - e.data["t0"] == pytest.approx(
            e.data["periods"] * e.data["period_s"]
        )


class TestPipelineEquivalence:
    """Pipelined runs: detection, jump, re-sync through every §5 variant."""

    @pytest.mark.parametrize("label", ["1", "1A", "2", "2A", "2B", "2C"])
    def test_frames_identical_and_lifetime_close(self, label):
        exact, fast = _pair(label)
        assert fast.frames == exact.frames
        assert _rel(fast.t_hours, exact.t_hours) < 1e-3
        for name, t_exact in exact.death_times_s.items():
            assert _rel(fast.death_times_s[name], t_exact) < 1e-3

    def test_jumps_actually_happen(self):
        _, fast = _pair("2")
        assert fast.pipeline.ff_jumps >= 1
        assert fast.pipeline.ff_frames_skipped > 0
        assert fast.pipeline.ff_frames_skipped < fast.frames

    def test_exact_mode_never_jumps(self):
        exact, _ = _pair("2")
        assert exact.pipeline.ff_jumps == 0
        assert exact.pipeline.ff_frames_skipped == 0

    def test_counters_match_exact(self):
        """Arithmetic counter bumps land on the event-exact totals."""
        exact = run_experiment(
            PAPER_EXPERIMENTS["2"], mode="exact", telemetry=True, **TINY
        )
        fast = run_experiment(
            PAPER_EXPERIMENTS["2"], mode="fast", telemetry=True, **TINY
        )
        for key in ("frames.completed",):
            assert fast.obs.metrics.counter(key).value == pytest.approx(
                exact.obs.metrics.counter(key).value
            )

    def test_rotation_period_folds_into_detection(self):
        """Rotation widens the candidate period to one full role cycle.

        The tiny battery dies inside 2C's first 100-frame rotation
        epoch, so a shorter rotation period is substituted to get
        several complete role cycles — and therefore jumps — into the
        run while still comparing both modes on equal footing.
        """
        import dataclasses

        spec = dataclasses.replace(PAPER_EXPERIMENTS["2C"], rotation_period=5)
        exact = run_experiment(spec, mode="exact", **TINY)
        fast = run_experiment(spec, mode="fast", **TINY)
        assert fast.frames == exact.frames
        assert _rel(fast.t_hours, exact.t_hours) < 1e-3
        assert fast.pipeline.ff_jumps >= 1


class TestGating:
    def test_stochastic_timing_never_jumps(self):
        """Jittered startups must gate fast-forward off entirely."""
        timing = TransactionTiming(startup_jitter_s=0.01)
        spec = PAPER_EXPERIMENTS["2"]
        fast = run_experiment(
            spec, mode="fast", timing=timing, max_frames=40, **TINY
        )
        exact = run_experiment(
            spec, mode="exact", timing=timing, max_frames=40, **TINY
        )
        assert fast.pipeline.ff_jumps == 0
        assert fast.frames == exact.frames
        assert fast.t_hours == exact.t_hours

    def test_trace_requires_exact_mode(self):
        with pytest.raises(ConfigurationError, match="trace"):
            run_experiment(PAPER_EXPERIMENTS["2"], mode="fast", trace=True, **TINY)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            run_experiment(PAPER_EXPERIMENTS["2"], mode="warp", **TINY)


class TestModeKeys:
    """Fast and exact results must never alias in caches or registries."""

    def test_fingerprints_distinguish_modes(self):
        spec = PAPER_EXPERIMENTS["2"]
        fp_exact = experiment_fingerprint(spec, {"mode": "exact"})
        fp_fast = experiment_fingerprint(spec, {"mode": "fast"})
        assert fp_exact != fp_fast

    def test_default_mode_fingerprints_as_exact(self):
        spec = PAPER_EXPERIMENTS["2"]
        assert experiment_fingerprint(spec, {}) == experiment_fingerprint(
            spec, {"mode": "exact"}
        )

    def test_cache_keeps_modes_separate(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kw = dict(cache=cache, **TINY)
        fast = run_paper_suite(["2"], mode="fast", **kw)["2"]
        assert fast.pipeline.ff_jumps >= 1
        # Same cache, exact mode: must be a miss, not the fast payload.
        exact = run_paper_suite(["2"], mode="exact", **kw)["2"]
        assert exact.pipeline.ff_jumps == 0
        assert cache.hits == 0

    def test_cached_fast_run_round_trips_ff_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kw = dict(cache=cache, mode="fast", **TINY)
        first = run_paper_suite(["2"], **kw)["2"]
        again = run_paper_suite(["2"], **kw)["2"]
        assert cache.hits == 1
        assert again.frames == first.frames
        assert again.sim_events == first.sim_events
        assert again.pipeline.ff_jumps == first.pipeline.ff_jumps
        assert again.pipeline.ff_frames_skipped == first.pipeline.ff_frames_skipped


@pytest.mark.tier2
class TestFullScaleIdentity:
    """The acceptance contract on the real 1400 mAh battery.

    Slow (tens of seconds): selected with ``-m tier2``, exercised by
    the CI perf-smoke job rather than the default test run.
    """

    @pytest.fixture(scope="class")
    def suites(self):
        exact = run_paper_suite(mode="exact")
        fast = run_paper_suite(mode="fast")
        return exact, fast

    def test_frame_counts_identical_all_labels(self, suites):
        exact, fast = suites
        assert {k: r.frames for k, r in fast.items()} == {
            k: r.frames for k, r in exact.items()
        }

    def test_lifetimes_within_a_tenth_percent(self, suites):
        exact, fast = suites
        for label, run in fast.items():
            assert _rel(run.t_hours, exact[label].t_hours) < 1e-3, label

    def test_fig10_ordering_holds_in_fast_mode(self, suites):
        _, fast = suites
        t = {k: r.t_hours for k, r in fast.items()}
        assert t["2C"] > t["2B"] > t["2A"] > t["2"]

    @pytest.mark.parametrize("extra", [[], ["--exact"]])
    def test_check_paper_green_in_both_modes(self, extra):
        from repro.cli import main

        assert main(["check", "--paper", *extra]) == 0
