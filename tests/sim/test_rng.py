"""Deterministic named RNG streams."""

from repro.sim import RngStreams


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RngStreams(7).stream("x")
        b = RngStreams(7).stream("x")
        assert [float(a.uniform()) for _ in range(5)] == [
            float(b.uniform()) for _ in range(5)
        ]

    def test_different_names_independent(self):
        streams = RngStreams(7)
        a = streams.stream("link.startup")
        b = streams.stream("workload")
        assert float(a.uniform()) != float(b.uniform())

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x")
        b = RngStreams(2).stream("x")
        assert float(a.uniform()) != float(b.uniform())

    def test_stream_object_cached(self):
        streams = RngStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_name_identity_order_independent(self):
        """Creating streams in a different order must not change them."""
        s1 = RngStreams(3)
        s1.stream("a")
        first = float(s1.stream("b").uniform())
        s2 = RngStreams(3)
        second = float(s2.stream("b").uniform())  # no "a" created first
        assert first == second

    def test_fork_independent(self):
        base = RngStreams(5)
        f1, f2 = base.fork(1), base.fork(2)
        assert float(f1.stream("x").uniform()) != float(f2.stream("x").uniform())

    def test_fork_deterministic(self):
        assert float(RngStreams(5).fork(1).stream("x").uniform()) == float(
            RngStreams(5).fork(1).stream("x").uniform()
        )
