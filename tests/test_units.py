"""Unit-conversion helpers."""

import pytest

from repro import units


class TestTimeConversions:
    def test_hours_to_seconds(self):
        assert units.hours_to_seconds(2.0) == 7200.0

    def test_seconds_to_hours(self):
        assert units.seconds_to_hours(5400.0) == 1.5

    def test_roundtrip(self):
        assert units.seconds_to_hours(units.hours_to_seconds(3.7)) == pytest.approx(3.7)


class TestChargeConversions:
    def test_mah_to_mas(self):
        assert units.mah_to_mas(1.0) == 3600.0

    def test_mas_to_mah(self):
        assert units.mas_to_mah(7200.0) == 2.0

    def test_roundtrip(self):
        assert units.mas_to_mah(units.mah_to_mas(123.4)) == pytest.approx(123.4)


class TestDataConversions:
    def test_kb_is_decimal(self):
        # The paper's payloads are decimal KB (consistent with 80 Kbps).
        assert units.kb_to_bytes(10.1) == 10_100

    def test_kb_roundtrip(self):
        assert units.bytes_to_kb(units.kb_to_bytes(7.5)) == pytest.approx(7.5)

    def test_kbps(self):
        assert units.kbps_to_bps(80.0) == 80_000.0


class TestTransferSeconds:
    def test_fig6_input_frame(self):
        # 10.1 KB at 80 Kbps: 1.01 s of wire time.
        assert units.transfer_seconds(10_100, 80_000) == pytest.approx(1.01)

    def test_zero_payload(self):
        assert units.transfer_seconds(0, 80_000) == 0.0

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            units.transfer_seconds(-1, 80_000)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.transfer_seconds(100, 0)
