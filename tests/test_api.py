"""Public API surface: stability of the top-level namespace."""

import inspect

import repro


class TestSurface:
    def test_all_names_resolve(self):
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert missing == []

    def test_version_matches_package_metadata(self):
        assert repro.__version__ == "1.0.0"

    def test_every_public_item_documented(self):
        undocumented = []
        for name in repro.__all__:
            if name == "__version__":
                continue
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert undocumented == []

    def test_key_entry_points_are_callable(self):
        for name in (
            "run_experiment",
            "run_paper_suite",
            "calibrate_battery",
            "analyze_partitions",
            "yds_schedule",
            "generate_scene",
            "measure_profile",
        ):
            assert callable(getattr(repro, name))

    def test_paper_constants_present(self):
        assert len(repro.SA1100_TABLE) == 11
        assert repro.PAPER_PROFILE.total_seconds_at_max == 1.1
        assert len(repro.PAPER_EXPERIMENTS) == 8

    def test_module_docstrings_everywhere(self):
        """Every repro module ships a module docstring."""
        import pathlib
        import importlib

        root = pathlib.Path(repro.__file__).parent
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root.parent)
            module_name = str(rel.with_suffix("")).replace("/", ".")
            if module_name.endswith(".__init__"):
                module_name = module_name[: -len(".__init__")]
            if module_name.endswith("__main__"):
                continue
            module = importlib.import_module(module_name)
            assert (module.__doc__ or "").strip(), f"{module_name} lacks a docstring"
