"""Adaptive exact-rung budgets: disagreement measurement, apportionment."""

import pytest

from repro.errors import ConfigurationError
from repro.explore.budget import allocate_budgets, rank_disagreement


class TestRankDisagreement:
    def test_identical_rankings(self):
        pairs = [(3.0, 30.0, 0), (2.0, 20.0, 1), (1.0, 10.0, 2)]
        assert rank_disagreement(pairs) == 0.0

    def test_reversed_rankings(self):
        pairs = [(3.0, 10.0, 0), (2.0, 20.0, 1), (1.0, 30.0, 2)]
        assert rank_disagreement(pairs) == 1.0

    def test_one_swap(self):
        pairs = [(3.0, 30.0, 0), (2.0, 10.0, 1), (1.0, 20.0, 2)]
        assert rank_disagreement(pairs) == pytest.approx(1 / 3)

    def test_fewer_than_two_items(self):
        assert rank_disagreement([]) == 0.0
        assert rank_disagreement([(1.0, 2.0, 0)]) == 0.0

    def test_ties_break_identically_in_both_orderings(self):
        # Equal scores on both sides: the shared index tie-break keeps
        # the orderings aligned, so ties are never counted as discord.
        pairs = [(1.0, 1.0, 0), (1.0, 1.0, 1), (1.0, 1.0, 2)]
        assert rank_disagreement(pairs) == 0.0


class TestAllocateBudgets:
    def test_equal_weights_reproduce_round_robin(self):
        # The legacy fixed strategy: keep=6 over three equal strata.
        assert allocate_budgets(6, [4, 4, 4], [0.0, 0.0, 0.0]) == [2, 2, 2]

    def test_equal_weights_non_divisible(self):
        # Remainder slots land on earlier strata, like the round-robin.
        assert allocate_budgets(5, [4, 4, 4], [0.0, 0.0, 0.0]) == [2, 2, 1]

    def test_disagreement_skews_allocation(self):
        out = allocate_budgets(6, [6, 6], [0.0, 1.0])
        assert sum(out) == 6
        assert out[1] > out[0]

    def test_caps_at_stratum_size(self):
        assert allocate_budgets(10, [2, 2], [0.0, 0.0]) == [2, 2]

    def test_floor_grants_each_nonempty_stratum_one(self):
        out = allocate_budgets(3, [5, 5, 5], [1.0, 0.0, 0.0])
        assert all(a >= 1 for a in out)
        assert sum(out) == 3

    def test_empty_strata_get_nothing(self):
        assert allocate_budgets(4, [0, 4], [1.0, 0.0]) == [0, 4]

    def test_zero_total(self):
        assert allocate_budgets(0, [3, 3], [0.5, 0.5]) == [0, 0]

    def test_single_stratum_gets_everything_it_can_hold(self):
        assert allocate_budgets(6, [4], [0.7]) == [4]

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="total"):
            allocate_budgets(-1, [1], [0.0])
        with pytest.raises(ConfigurationError, match="lengths"):
            allocate_budgets(1, [1, 2], [0.0])
