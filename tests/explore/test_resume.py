"""Resume determinism: SIGKILL an exploration mid-rung, resume, compare.

The contract under test is the one ``repro explore --resume`` sells:
kill the process at any point, resume from the registry's latest cursor
against the same result cache, and the frontier export and registry
dumps come out byte-identical to a run that was never interrupted —
with at most the one in-flight chunk re-executed, because the executor
persists each chunk's payload the moment it settles.

The kill is deterministic, not timing-based: a subprocess driver wraps
``ResultCache.put`` and raises ``SIGKILL`` around the N-th write, so
each test pins exactly which rung (and which chunk within it) dies.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exec import ResultCache
from repro.explore import explore
from repro.explore.halving import RUNGS
from repro.obs.store import RunRegistry
from tests.explore.test_halving import small_space

KEEP = (8, 4, 2)
CHUNK = 2

_DRIVER = """
import os, signal, sys

sys.path.insert(0, {src!r})

from repro.exec.cache import ResultCache
from repro.explore import Axis, SpaceSpec
from repro.explore.halving import explore
from repro.obs.store import RunRegistry

kill_after = int(sys.argv[1])
before = sys.argv[2] == "before"


class KillingCache(ResultCache):
    puts = 0

    def put(self, key, payload):
        KillingCache.puts += 1
        if before and KillingCache.puts == kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        super().put(key, payload)
        if not before and KillingCache.puts == kill_after:
            os.kill(os.getpid(), signal.SIGKILL)


space = SpaceSpec(axes=(
    Axis.choice("policy", "baseline", "slowest", "dvs_io"),
    Axis.choice("cut", (), (2,)),
    Axis.grid("capacity_mah", 30.0, 70.0, 5),
    Axis.grid("io_activity", 0.1, 0.6, 4),
))
explore(
    space,
    keep={keep!r},
    cache=KillingCache(sys.argv[3]),
    registry=RunRegistry(sys.argv[4]),
    chunk_size={chunk},
)
"""


def _run_driver(tmp_path: Path, kill_after: int, when: str) -> None:
    """Run one exploration in a subprocess, SIGKILLed at the N-th put."""
    src = str(Path(__file__).resolve().parents[2] / "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _DRIVER.format(src=src, keep=KEEP, chunk=CHUNK),
            str(kill_after),
            when,
            str(tmp_path / "cache"),
            str(tmp_path / "runs.sqlite"),
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr


def _control(tmp_path: Path):
    """An uninterrupted run in its own cache/registry, plus put counts."""
    puts: list[str] = []

    class CountingCache(ResultCache):
        def put(self, key, payload):
            puts.append(key)
            super().put(key, payload)

    registry = RunRegistry(tmp_path / "control.sqlite")
    result = explore(
        small_space(),
        keep=KEEP,
        cache=CountingCache(tmp_path / "control-cache"),
        registry=registry,
        chunk_size=CHUNK,
    )
    # One put per executed item: the accounting below leans on it.
    assert len(puts) == sum(r.executed for r in result.rungs[1:])
    return result, registry, puts


def _resume(tmp_path: Path):
    registry = RunRegistry(tmp_path / "runs.sqlite")
    record = registry.latest_explore_cursor()
    assert record is not None and record.cursor is not None
    result = explore(
        small_space(),
        keep=KEEP,
        cache=ResultCache(tmp_path / "cache"),
        registry=registry,
        chunk_size=CHUNK,
        resume=record.cursor,
    )
    return result, registry, record


def _frontier_blob(result) -> str:
    return json.dumps(result.frontier_payload()["frontier"], sort_keys=True)


@pytest.fixture(scope="module")
def control(tmp_path_factory):
    return _control(tmp_path_factory.mktemp("control"))


class TestKillMidRung:
    def _check(self, tmp_path, control, kill_after, when, dead_rung):
        result, control_registry, puts = control
        _run_driver(tmp_path, kill_after, when)

        killed_registry = RunRegistry(tmp_path / "runs.sqlite")
        snapshots = killed_registry.list_explore_sessions()
        # The killed session left a clean prefix: every completed rung
        # snapshotted, nothing from the rung that died.
        assert [s.rung for s in snapshots] == list(
            reversed(RUNGS[: RUNGS.index(dead_rung)])
        )

        resumed, resumed_registry, record = _resume(tmp_path)
        assert resumed.resumed_rungs == RUNGS.index(dead_rung)
        assert _frontier_blob(resumed) == _frontier_blob(result)

        # Registry contents byte-identical to the uninterrupted run's.
        assert resumed_registry.dump_rows() == control_registry.dump_rows()
        assert (
            resumed_registry.dump_explore_rows()
            == control_registry.dump_explore_rows()
        )

        # Work accounting. The killed session executed ``kill_after``
        # items and persisted each one's payload as it settled (minus
        # the in-flight one in the "before" variant); restored rungs
        # never touch the cache again, so the resumed session hits the
        # dead rung's persisted items and executes everything else.
        total = len(puts)
        persisted = kill_after if when == "after" else kill_after - 1
        skipped = sum(
            r.executed
            for r in result.rungs[1 : RUNGS.index(dead_rung)]
        )
        executed = sum(r.executed for r in resumed.rungs[1:])
        hits = sum(r.cache_hits for r in resumed.rungs[1:])
        assert hits == persisted - skipped
        assert executed == total - persisted
        # Items executed by both sessions — at most the in-flight one.
        re_executed = kill_after + executed - total
        assert re_executed == (0 if when == "after" else 1)

    def test_sigkill_mid_rung1_resumes_identically(self, tmp_path, control):
        # Rung 1 writes the first cache entries; die mid-way through
        # them, after the second chunk's payload landed on disk.
        _, _, puts = control
        assert len(puts) >= 4
        self._check(tmp_path, control, 2, "after", "cohort")

    def test_sigkill_mid_rung1_in_flight_chunk_lost(self, tmp_path, control):
        # Die *before* the second chunk's payload persists: that chunk
        # was in flight, and it alone re-executes on resume.
        self._check(tmp_path, control, 2, "before", "cohort")

    def test_sigkill_mid_rung2_resumes_identically(self, tmp_path, control):
        # Past rung 1's chunk writes, into rung 2's per-config sims.
        result, _, puts = control
        rung1_chunks = result.rungs[1].executed
        assert len(puts) > rung1_chunks + 1
        self._check(tmp_path, control, rung1_chunks + 2, "after", "fast")

    def test_completed_session_resume_is_noop(self, tmp_path, control):
        result, _, _ = control
        registry = RunRegistry(tmp_path / "runs.sqlite")
        uninterrupted = explore(
            small_space(),
            keep=KEEP,
            cache=ResultCache(tmp_path / "cache"),
            registry=registry,
            chunk_size=CHUNK,
        )
        record = registry.latest_explore_cursor()
        assert record.rung == "frontier"
        resumed = explore(
            small_space(),
            keep=KEEP,
            cache=ResultCache(tmp_path / "cache"),
            registry=registry,
            chunk_size=CHUNK,
            resume=record.cursor,
        )
        assert resumed.resumed_rungs == len(RUNGS)
        assert sum(r.executed for r in resumed.rungs) == 0
        assert _frontier_blob(resumed) == _frontier_blob(uninterrupted)
        assert _frontier_blob(resumed) == _frontier_blob(result)


class TestCursorValidation:
    def test_mismatched_arguments_rejected(self, tmp_path, control):
        from repro.errors import ConfigurationError

        registry = RunRegistry(tmp_path / "runs.sqlite")
        explore(
            small_space(),
            keep=KEEP,
            registry=registry,
            chunk_size=CHUNK,
        )
        cursor = registry.latest_explore_cursor().cursor
        with pytest.raises(ConfigurationError, match="keep"):
            explore(
                small_space(), keep=(9, 4, 2), resume=cursor
            )
        with pytest.raises(ConfigurationError, match="guided|mode"):
            explore(
                small_space(), keep=KEEP, guided=True, resume=cursor
            )
