"""Pareto extraction: domination semantics and edge cases."""

import pytest

from repro.errors import ConfigurationError
from repro.explore import OBJECTIVES, dominates, pareto_indices
from repro.explore.pareto import pareto_layers


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((2.0, 2.0, 0.0), (1.0, 1.0, 0.0), ("max",) * 3)

    def test_better_on_one_equal_elsewhere(self):
        assert dominates((2.0, 1.0), (1.0, 1.0), ("max", "max"))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0), ("max", "max"))
        assert not dominates((1.0, 1.0), (1.0, 1.0), ("min", "min"))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((2.0, 1.0), (1.0, 2.0), ("max", "max"))
        assert not dominates((1.0, 2.0), (2.0, 1.0), ("max", "max"))

    def test_min_sense_flips(self):
        assert dominates((1.0,), (2.0,), ("min",))
        assert not dominates((2.0,), (1.0,), ("min",))

    def test_default_senses_are_the_objectives(self):
        # (lifetime max, frames max, misses min)
        assert dominates((10.0, 100, 0), (9.0, 100, 0))
        assert dominates((10.0, 100, 0), (10.0, 100, 3))
        assert not dominates((10.0, 100, 3), (10.0, 100, 0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            dominates((1.0,), (1.0, 2.0), ("max", "max"))

    def test_bad_sense_rejected(self):
        with pytest.raises(ConfigurationError):
            dominates((1.0,), (2.0,), ("sideways",))


class TestParetoIndices:
    def test_empty(self):
        assert pareto_indices([]) == []

    def test_single_point(self):
        assert pareto_indices([(1.0, 2, 0)]) == [0]

    def test_dominated_point_removed(self):
        points = [(10.0, 100, 0), (5.0, 50, 0)]
        assert pareto_indices(points) == [0]

    def test_tradeoff_keeps_both(self):
        points = [(10.0, 50, 0), (5.0, 100, 0)]
        assert pareto_indices(points) == [0, 1]

    def test_duplicate_points_all_kept(self):
        points = [(10.0, 100, 0), (10.0, 100, 0), (10.0, 100, 0)]
        assert pareto_indices(points) == [0, 1, 2]

    def test_tie_on_one_objective(self):
        # Same lifetime; frames decide. The loser ties on axis 0 only.
        points = [(10.0, 100, 0), (10.0, 90, 0)]
        assert pareto_indices(points) == [0]

    def test_tie_on_one_objective_with_tradeoff(self):
        # Ties on lifetime, each wins one of the other axes: both stay.
        points = [(10.0, 100, 5), (10.0, 90, 0)]
        assert pareto_indices(points) == [0, 1]

    def test_misses_minimized(self):
        points = [(10.0, 100, 4), (10.0, 100, 0)]
        assert pareto_indices(points) == [1]

    def test_input_order_preserved(self):
        points = [(5.0, 100, 0), (10.0, 50, 0), (7.0, 70, 0)]
        assert pareto_indices(points) == [0, 1, 2]

    def test_all_dominated_by_last(self):
        points = [(1.0, 1, 9), (2.0, 2, 5), (3.0, 3, 0)]
        assert pareto_indices(points) == [2]

    def test_custom_senses(self):
        points = [(1.0, 1.0), (2.0, 2.0)]
        assert pareto_indices(points, senses=("min", "min")) == [0]

    def test_objectives_shape(self):
        assert [s for _, s in OBJECTIVES] == ["max", "max", "min"]


class TestParetoLayers:
    def test_empty(self):
        assert pareto_layers([]) == []

    def test_single_front(self):
        points = [(5.0, 100, 0), (10.0, 50, 0)]
        assert pareto_layers(points) == [[0, 1]]

    def test_successive_fronts_peel(self):
        points = [(3.0, 3, 0), (2.0, 2, 0), (1.0, 1, 0)]
        assert pareto_layers(points) == [[0], [1], [2]]

    def test_layers_partition_the_input(self):
        points = [(3.0, 1, 0), (1.0, 3, 0), (2.0, 2, 1), (1.0, 1, 2)]
        layers = pareto_layers(points)
        flat = [i for layer in layers for i in layer]
        assert sorted(flat) == list(range(len(points)))
        assert layers[0] == pareto_indices(points)

    def test_input_order_within_layer(self):
        points = [(5.0, 100, 0), (10.0, 50, 0), (7.0, 70, 0)]
        assert pareto_layers(points) == [[0, 1, 2]]

    def test_custom_senses(self):
        points = [(1.0, 1.0), (2.0, 2.0)]
        assert pareto_layers(points, senses=("min", "min")) == [[0], [1]]
