"""SpaceSpec: axes, validation, deterministic enumeration, resolution."""

import pytest

from repro.core.policies import (
    BaselinePolicy,
    DVSDuringIOPolicy,
    SlowestFeasiblePolicy,
)
from repro.errors import ConfigurationError
from repro.explore import AXES, Axis, ConfigBattery, SpaceSpec, default_space
from repro.hw.battery import KiBaM
from repro.hw.battery.linear import LinearBattery
from repro.hw.battery.peukert import PeukertBattery
from repro.hw.power import PAPER_POWER_MODEL


class TestAxis:
    def test_grid_endpoints(self):
        axis = Axis.grid("capacity_mah", 100.0, 200.0, 5)
        assert axis.values[0] == 100.0
        assert axis.values[-1] == 200.0
        assert len(axis.values) == 5

    def test_log_geometric(self):
        axis = Axis.log("bandwidth_bps", 40_000.0, 160_000.0, 3)
        assert axis.values[0] == pytest.approx(40_000.0)
        assert axis.values[1] == pytest.approx(80_000.0)
        assert axis.values[2] == pytest.approx(160_000.0)

    def test_single_point(self):
        assert Axis.grid("io_activity", 0.3, 0.9, 1).values == (0.3,)

    def test_unknown_axis_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown axis"):
            Axis.choice("warp_factor", 9)

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one value"):
            Axis.choice("policy")

    def test_bad_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            Axis.grid("capacity_mah", 200.0, 100.0, 3)
        with pytest.raises(ConfigurationError):
            Axis.log("bandwidth_bps", -1.0, 10.0, 3)


class TestSpaceValidation:
    def test_duplicate_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate axis"):
            SpaceSpec(axes=(
                Axis.choice("policy", "dvs_io"),
                Axis.choice("policy", "baseline"),
            ))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown families"):
            SpaceSpec(axes=(Axis.choice("policy", "warp"),))

    def test_unknown_chemistry_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chemistries"):
            SpaceSpec(axes=(Axis.choice("chemistry", "fusion"),))

    def test_bad_cut_rejected(self):
        # PAPER_PROFILE has 4 blocks: valid cut points are 1..3.
        with pytest.raises(ConfigurationError, match="invalid for a 4-block"):
            SpaceSpec(axes=(Axis.choice("cut", (9,)),))
        with pytest.raises(ConfigurationError, match="invalid for a 4-block"):
            SpaceSpec(axes=(Axis.choice("cut", (2, 1)),))

    def test_non_tuple_cut_rejected(self):
        with pytest.raises(ConfigurationError, match="tuples of ints"):
            SpaceSpec(axes=(Axis.choice("cut", [1]),))

    def test_bad_rotation_rejected(self):
        with pytest.raises(ConfigurationError, match="rotation_period"):
            SpaceSpec(axes=(Axis.choice("rotation_period", 0),))

    def test_io_activity_range(self):
        with pytest.raises(ConfigurationError, match="io_activity"):
            SpaceSpec(axes=(Axis.choice("io_activity", 1.5),))
        with pytest.raises(ConfigurationError, match="positive finite"):
            SpaceSpec(axes=(Axis.choice("io_activity", -0.1),))

    def test_bad_max_hours_rejected(self):
        with pytest.raises(ConfigurationError, match="max_hours"):
            SpaceSpec(axes=(), max_hours=0.0)


class TestEnumeration:
    def test_empty_spec_enumerates_the_pinned_point(self):
        space = SpaceSpec(axes=())
        assert space.size() == 1
        (config,) = space.configs()
        assert config.index == 0
        assert config.policy == "dvs_io"
        assert config.cut == (1,)
        assert config.deadline_s == 2.3
        assert config.io_activity == PAPER_POWER_MODEL.io_activity

    def test_size_is_cross_product(self):
        space = SpaceSpec(axes=(
            Axis.choice("policy", "baseline", "dvs_io"),
            Axis.choice("cut", (), (1,), (2,)),
        ))
        assert space.size() == 6
        assert len(space.configs()) == 6

    def test_enumeration_order_fixed_by_axes_vocabulary(self):
        # Declaring axes in reverse order must not change enumeration.
        a = SpaceSpec(axes=(
            Axis.choice("policy", "baseline", "dvs_io"),
            Axis.choice("cut", (), (1,)),
        ))
        b = SpaceSpec(axes=(
            Axis.choice("cut", (), (1,)),
            Axis.choice("policy", "baseline", "dvs_io"),
        ))
        assert a.configs() == b.configs()

    def test_indices_are_enumeration_positions(self):
        space = SpaceSpec(axes=(Axis.choice("policy", *("baseline",) * 1),
                                Axis.grid("capacity_mah", 100.0, 400.0, 4)))
        assert [c.index for c in space.configs()] == [0, 1, 2, 3]

    def test_limit_strides_and_keeps_indices(self):
        space = SpaceSpec(axes=(Axis.grid("capacity_mah", 100.0, 1000.0, 10),))
        sampled = space.configs(limit=4)
        assert len(sampled) == 4
        assert sampled[0].index == 0
        assert sampled[-1].index == 9
        # Original enumeration indices survive subsampling.
        full = space.configs()
        for config in sampled:
            assert full[config.index] == config

    def test_limit_one(self):
        space = SpaceSpec(axes=(Axis.grid("capacity_mah", 100.0, 1000.0, 10),))
        assert [c.index for c in space.configs(limit=1)] == [0]

    def test_limit_larger_than_space_is_noop(self):
        space = SpaceSpec(axes=(Axis.grid("capacity_mah", 100.0, 1000.0, 5),))
        assert len(space.configs(limit=100)) == 5

    def test_default_space_is_big(self):
        space = default_space()
        assert space.size() == 103_680
        assert space.size() >= 100_000


class TestIndexedAccess:
    def test_config_at_equals_enumeration(self):
        space = SpaceSpec(axes=(
            Axis.choice("policy", "baseline", "dvs_io"),
            Axis.choice("cut", (), (1,), (2,)),
            Axis.grid("capacity_mah", 100.0, 400.0, 4),
        ))
        full = space.configs()
        for i in range(space.size()):
            assert space.config_at(i) == full[i]

    def test_config_at_default_space_spot_checks(self):
        # O(1) decode against the materialized 104k enumeration at a
        # few spread-out positions (materializing once is the test).
        space = default_space()
        full = space.configs()
        for i in (0, 1, 51_839, 103_679):
            assert space.config_at(i) == full[i]

    def test_digits_at_round_trips_through_radices(self):
        space = default_space()
        radices = space.radices()
        for index in (0, 7, 103_679):
            digits = space.digits_at(index)
            assert len(digits) == len(radices)
            back = 0
            for digit, radix in zip(digits, radices):
                assert 0 <= digit < radix
                back = back * radix + digit
            assert back == index

    def test_digits_at_rejects_out_of_range(self):
        space = SpaceSpec(axes=(Axis.choice("policy", "baseline"),))
        with pytest.raises(ConfigurationError, match="outside"):
            space.digits_at(1)
        with pytest.raises(ConfigurationError, match="outside"):
            space.digits_at(-1)

    def test_indices_match_limited_enumeration(self):
        space = SpaceSpec(axes=(Axis.grid("capacity_mah", 100.0, 1000.0, 10),))
        for limit in (None, 1, 3, 4, 10, 100):
            assert space.indices(limit) == [
                c.index for c in space.configs(limit=limit)
            ]


class TestConfigResolution:
    def _one(self, **axes):
        space = SpaceSpec(axes=tuple(
            Axis.choice(name, value) for name, value in axes.items()
        ))
        (config,) = space.configs()
        return config

    def test_policy_objects(self):
        assert isinstance(
            self._one(policy="baseline").policy_object(), BaselinePolicy
        )
        assert isinstance(
            self._one(policy="slowest").policy_object(), SlowestFeasiblePolicy
        )
        assert isinstance(
            self._one(policy="dvs_io").policy_object(), DVSDuringIOPolicy
        )

    def test_timing_carries_bandwidth(self):
        config = self._one(bandwidth_bps=40_000.0)
        assert config.timing().bandwidth_bps == 40_000.0

    def test_power_model_carries_io_activity(self):
        config = self._one(io_activity=0.5)
        assert config.power_model().io_activity == 0.5

    def test_n_stages(self):
        assert self._one(cut=()).n_stages == 1
        assert self._one(cut=(1, 2)).n_stages == 3

    def test_experiment_spec_round_trip(self):
        config = self._one(cut=(2,), deadline_s=2.0)
        spec = config.experiment_spec()
        assert spec.label == config.label
        assert spec.cuts == (2,)
        assert spec.deadline_s == 2.0
        assert spec.n_nodes == 2

    def test_battery_parameters_kibam_only(self):
        config = self._one(chemistry="linear")
        with pytest.raises(ConfigurationError):
            config.battery_parameters()


class TestConfigBattery:
    def test_kibam(self):
        cell = ConfigBattery("kibam", 500.0)()
        assert isinstance(cell, KiBaM)
        assert cell.params.capacity_mah == 500.0

    def test_linear(self):
        cell = ConfigBattery("linear", 500.0)()
        assert isinstance(cell, LinearBattery)

    def test_peukert(self):
        cell = ConfigBattery("peukert", 500.0)()
        assert isinstance(cell, PeukertBattery)

    def test_unknown_chemistry(self):
        with pytest.raises(ConfigurationError):
            ConfigBattery("fusion", 500.0)()

    def test_picklable(self):
        import pickle

        factory = ConfigBattery("kibam", 500.0)
        assert pickle.loads(pickle.dumps(factory)) == factory
