"""Successive halving: pruning, constraints, determinism, confirmation.

The small spaces here use quarter-scale-and-below capacities so the
rung-3 exact simulations stay fast; the determinism assertions are the
same byte-identity contract the CI explore-smoke job enforces on the
CLI artifact.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import ResultCache
from repro.explore import Axis, SpaceSpec, explore
from repro.explore.halving import RUNGS, _bucket_walk, _peukert_rate
from repro.hw.battery.peukert import PeukertBattery
from repro.obs.store import RunRegistry


def small_space(**overrides) -> SpaceSpec:
    """120 configs with small batteries (exact sims finish quickly)."""
    axes = dict(
        policy=Axis.choice("policy", "baseline", "slowest", "dvs_io"),
        cut=Axis.choice("cut", (), (2,)),
        capacity_mah=Axis.grid("capacity_mah", 30.0, 70.0, 5),
        io_activity=Axis.grid("io_activity", 0.1, 0.6, 4),
    )
    axes.update(overrides)
    return SpaceSpec(axes=tuple(a for a in axes.values() if a is not None))


class TestExploreEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        return explore(small_space(), keep=(8, 4, 2))

    def test_rung_names_and_order(self, result):
        assert tuple(r.name for r in result.rungs) == RUNGS

    def test_prunes_at_least_ninety_percent(self, result):
        assert result.n_configs == 120
        assert result.pruned_before_sim_fraction >= 0.90

    def test_frontier_nonempty_and_exact_confirmed(self, result):
        assert result.frontier
        exact = result.rungs[-1]
        assert exact.name == "exact"
        # Every frontier member carries a run id minted from an
        # exact-mode run record.
        for member in result.frontier:
            assert len(member.run_id) == 64
        assert len(result.frontier) <= exact.promoted

    def test_frontier_members_mutually_nondominated(self, result):
        from repro.explore import dominates

        points = [
            (m.lifetime_hours, m.frames, m.deadline_misses)
            for m in result.frontier
        ]
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                if i != j:
                    assert not dominates(a, b)

    def test_budgets_respected(self, result):
        keep = (8, 4, 2)
        for report, budget in zip(result.rungs, keep):
            assert report.promoted <= budget
            assert result.rungs[result.rungs.index(report) + 1].entered == (
                report.promoted
            )

    def test_payload_has_no_wall_clock(self, result):
        text = json.dumps(result.frontier_payload())
        assert "wall_s" not in text
        assert "executed" not in text
        assert "cache_hits" not in text

    def test_keep_validation(self):
        with pytest.raises(ConfigurationError, match="keep"):
            explore(small_space(), keep=(8, 4))
        with pytest.raises(ConfigurationError, match="keep"):
            explore(small_space(), keep=(8, 0, 2))
        with pytest.raises(ConfigurationError, match="chunk_size"):
            explore(small_space(), keep=(8, 4, 2), chunk_size=0)


class TestDeterminism:
    def test_frontier_identical_serial_parallel_replay(self, tmp_path):
        space = small_space()
        keep = (8, 4, 2)
        cache = ResultCache(tmp_path / "cache")
        reg_a = RunRegistry(tmp_path / "a.sqlite")
        reg_b = RunRegistry(tmp_path / "b.sqlite")

        cold = explore(space, keep=keep, cache=cache, registry=reg_a)
        parallel = explore(space, keep=keep, jobs=2)
        replay = explore(space, keep=keep, cache=cache, registry=reg_b)

        blob = lambda r: json.dumps(r.frontier_payload(), sort_keys=True)
        assert blob(cold) == blob(parallel)
        assert blob(cold) == blob(replay)

        # The replay actually replayed: nothing past rung 0 executed.
        assert sum(r.executed for r in replay.rungs[1:]) == 0
        assert sum(r.cache_hits for r in replay.rungs[1:]) > 0

        # And the registry contents are byte-identical cold vs replay.
        assert reg_a.dump_rows() == reg_b.dump_rows()
        assert reg_a.dump_explore_rows() == reg_b.dump_explore_rows()

    def test_limit_subsample_deterministic(self):
        space = small_space()
        a = explore(space, keep=(8, 4, 2), limit=40)
        b = explore(space, keep=(8, 4, 2), limit=40)
        assert a.n_configs == 40
        assert json.dumps(a.frontier_payload()) == json.dumps(
            b.frontier_payload()
        )


class TestConstraints:
    def test_all_infeasible_space_short_circuits(self):
        # A 0.2 s deadline fits no schedule: everything dies at rung 0
        # and no simulation ever runs.
        space = small_space(
            deadline_s=Axis.choice("deadline_s", 0.2),
        )
        result = explore(space, keep=(8, 4, 2))
        assert result.frontier == ()
        assert result.survivors == ()
        assert result.rungs[0].promoted == 0
        for report in result.rungs[1:]:
            assert report.entered == 0
            assert report.executed == 0
        assert sum(result.disqualified.values()) == result.n_configs

    def test_rotation_needs_two_nodes(self):
        space = SpaceSpec(axes=(
            Axis.choice("cut", ()),
            Axis.choice("rotation_period", 50),
            Axis.choice("capacity_mah", 40.0),
        ))
        result = explore(space, keep=(4, 2, 1))
        assert result.disqualified == {"rotation-feasibility": 1}
        assert result.frontier == ()

    def test_registry_streams_rung_snapshots(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs.sqlite")
        space = small_space(
            policy=Axis.choice("policy", "dvs_io"),
            io_activity=Axis.choice("io_activity", 0.3),
        )
        result = explore(space, keep=(4, 2, 1), registry=registry)
        sessions = registry.list_explore_sessions()
        # One snapshot per rung plus the final frontier record.
        assert len(sessions) == len(RUNGS) + 1
        final = sessions[0]
        assert final.rung == "frontier"
        assert len(final.rungs) == len(RUNGS)
        assert [m["label"] for m in final.frontier] == [
            m.config.label for m in result.frontier
        ]
        # Exact-rung survivors registered as ordinary run records too.
        run_ids = {record.run_id for record in registry.list_runs()}
        for member in result.frontier:
            assert member.run_id in run_ids


class TestChemistries:
    def test_chemistry_axis_explores(self):
        space = small_space(
            policy=Axis.choice("policy", "dvs_io"),
            chemistry=Axis.choice("chemistry", "kibam", "linear", "peukert"),
            capacity_mah=Axis.choice("capacity_mah", 40.0),
            io_activity=Axis.choice("io_activity", 0.2, 0.5),
        )
        result = explore(space, keep=(6, 3, 2))
        assert result.frontier
        # The linear battery ignores rate effects, so at equal capacity
        # it should over-deliver relative to Peukert — check the rung-1
        # ordering survived into the survivors when both are present.
        assert result.rungs[1].evaluated > 0


class TestBucketWalk:
    def test_exact_whole_cycles(self):
        death, cycles = _bucket_walk(
            100.0, ((10.0, 2.0), (0.0, 3.0)), lambda i: i, 1e9
        )
        assert death == pytest.approx(25.0)
        assert cycles == 5

    def test_partial_cycle(self):
        death, cycles = _bucket_walk(
            110.0, ((10.0, 2.0), (0.0, 3.0)), lambda i: i, 1e9
        )
        assert cycles == 5
        assert death == pytest.approx(26.0)

    def test_death_in_idle_leg_never_happens(self):
        # Zero-current legs consume nothing; death lands in a drain leg.
        death, _ = _bucket_walk(
            105.0, ((10.0, 2.0), (0.0, 3.0)), lambda i: i, 1e9
        )
        assert death == pytest.approx(25.5)

    def test_horizon(self):
        death, cycles = _bucket_walk(
            100.0, ((10.0, 2.0), (0.0, 3.0)), lambda i: i, 10.0
        )
        assert death is None
        assert cycles == 5

    def test_zero_drain_is_immortal(self):
        death, cycles = _bucket_walk(
            100.0, ((0.0, 1.0),), lambda i: i, 1e9
        )
        assert death is None
        assert cycles == 0

    def test_peukert_rate_matches_scalar_battery(self):
        cell = PeukertBattery(100.0)
        for current in (5.0, 60.0, 120.0, 250.0):
            assert _peukert_rate(current) == pytest.approx(
                cell.effective_rate(current)
            )

    def test_peukert_walk_matches_scalar_battery(self):
        cycle = ((120.0, 1.0), (20.0, 1.5))
        capacity_mah = 0.25
        death, _ = _bucket_walk(
            capacity_mah * 3600.0, cycle, _peukert_rate, 1e9
        )
        cell = PeukertBattery(capacity_mah)
        t = 0.0
        while True:
            advanced = False
            for current, dt in cycle:
                ttd = cell.time_to_death(current)
                if ttd <= dt:
                    t += ttd
                    advanced = True
                    break
                cell.draw(current, dt)
                t += dt
            if advanced and ttd <= dt:
                break
        assert death == pytest.approx(t, rel=1e-9)
