"""Model-guided rung-0 sampling: determinism and exhaustive parity.

The load-bearing claim is that the sampler is *steering*, never
*scoring*: every number that enters promotion comes from the true
analytic prescreen, so on any space the sampler manages to exhaust —
and on the spaces below where its stall criterion fires early — the
guided ladder lands the exact frontier the exhaustive driver confirms.
"""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.explore import AXES, default_space, explore
from repro.explore.halving import RungReport, _prescreen, _promote
from repro.explore.surrogate import (
    Surrogate,
    _index_of,
    _neighbors,
    _walk_stride,
    guided_sample,
    stratified_top,
)
from tests.explore.test_halving import small_space


def _true_evaluator(space):
    """The same rung-0 closure the scheduler wires up in guided mode."""
    structures: dict = {}
    drains: dict = {}
    report = RungReport("predict")
    disqualified: dict = {}

    def evaluate(indices):
        batch = [space.config_at(i) for i in indices]
        found = _prescreen(
            space, batch, report, disqualified, structures, drains
        )
        got = {c.config.index: c for c in found}
        return [got[i].score if i in got else None for i in indices]

    return evaluate


class TestWalkStride:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 64, 120, 1000, 103_680])
    def test_full_period_permutation(self, n):
        stride = _walk_stride(n)
        assert math.gcd(stride, n) == 1
        seen = {(k * stride) % n for k in range(n)}
        assert seen == set(range(n))

    def test_deterministic(self):
        assert _walk_stride(103_680) == _walk_stride(103_680)


class TestNeighbors:
    def test_hamming_one_count(self):
        radices = (3, 1, 4)
        digits = (1, 0, 2)
        got = list(_neighbors(digits, radices))
        assert len(got) == (3 - 1) + (4 - 1)
        for other in got:
            assert sum(a != b for a, b in zip(other, digits)) == 1
        assert len(set(got)) == len(got)

    def test_index_round_trip(self):
        radices = (3, 2, 4)
        space_size = 3 * 2 * 4
        seen = set()
        for a in range(3):
            for b in range(2):
                for c in range(4):
                    seen.add(_index_of((a, b, c), radices))
        assert seen == set(range(space_size))


class TestSurrogate:
    def test_constant_scores_predict_constant(self):
        space = small_space()
        model = Surrogate(space)
        for i in range(0, space.size(), 7):
            model.observe(space.digits_at(i), 5.0)
        assert model.predict(space.digits_at(3)) == pytest.approx(5.0)

    def test_learns_additive_axis_effect(self):
        space = small_space()
        axis = AXES.index("capacity_mah")
        model = Surrogate(space)
        for i in range(space.size()):
            digits = space.digits_at(i)
            model.observe(digits, float(digits[axis]))
        lo = model.predict(space.digits_at(0))
        hi_digits = tuple(
            4 if a == axis else d
            for a, d in enumerate(space.digits_at(0))
        )
        assert model.predict(hi_digits) > lo

    def test_unseen_values_rank_after_seen(self):
        space = small_space()
        model = Surrogate(space)
        model.observe(space.digits_at(0), 1.0)
        for ranked, digit in zip(model.top_axis_values(2), space.digits_at(0)):
            assert ranked[0] == digit


class TestStratifiedTop:
    def test_single_stratum_is_topk(self):
        entries = {i: (float(10 - i), 0) for i in range(6)}
        assert stratified_top(entries, 3) == (0, 1, 2)

    def test_round_robins_across_strata(self):
        entries = {
            0: (9.0, 0),
            1: (8.0, 0),
            2: (1.0, 1),
            3: (2.0, 1),
        }
        # rank 0 of each stratum first: 0 (9.0) and 3 (2.0).
        assert stratified_top(entries, 2) == (0, 3)

    def test_ties_break_on_index(self):
        entries = {5: (1.0, 0), 2: (1.0, 0)}
        assert stratified_top(entries, 1) == (2,)


class TestGuidedSample:
    def test_rejects_bad_arguments(self):
        space = small_space()
        with pytest.raises(ConfigurationError, match="keep"):
            guided_sample(space, 0, _true_evaluator(space))
        with pytest.raises(ConfigurationError, match="probe"):
            guided_sample(space, 4, _true_evaluator(space), probe=0)

    def test_deterministic_across_runs(self):
        space = small_space()
        a_scores, a_report = guided_sample(
            space, 8, _true_evaluator(space), probe=16, batch=16
        )
        b_scores, b_report = guided_sample(
            space, 8, _true_evaluator(space), probe=16, batch=16
        )
        assert a_scores == b_scores
        assert a_report.content() == b_report.content()

    def test_big_probe_exhausts_small_space(self):
        space = small_space()
        scores, report = guided_sample(space, 8, _true_evaluator(space))
        assert report.probed == space.size()
        assert report.stop_reason in ("stable", "exhausted")

    def test_small_probe_stops_stable_before_exhausting(self):
        space = small_space()
        scores, report = guided_sample(
            space, 8, _true_evaluator(space), probe=16, batch=16
        )
        assert report.stop_reason == "stable"
        assert report.probed < space.size()

    def test_limit_restricts_to_strided_subsample(self):
        space = small_space()
        allowed = set(space.indices(40))
        scores, report = guided_sample(
            space, 4, _true_evaluator(space), limit=40, probe=8, batch=8
        )
        assert report.universe == 40
        assert set(scores) <= allowed

    def test_scores_match_exhaustive_prescreen(self):
        space = small_space()
        scores, _ = guided_sample(space, 8, _true_evaluator(space))
        report = RungReport("predict")
        exhaustive = _prescreen(space, space.configs(), report, {})
        truth = {c.config.index: c.score for c in exhaustive}
        assert scores == truth


class TestGuidedVersusExhaustive:
    def test_full_ladder_frontier_identical(self):
        space = small_space()
        keep = (8, 4, 2)
        a = explore(space, keep=keep)
        b = explore(space, keep=keep, guided=True, probe=16)
        blob = lambda r: json.dumps(
            r.frontier_payload()["frontier"], sort_keys=True
        )
        assert blob(a) == blob(b)
        assert b.sampler is not None
        assert a.sampler is None

    def test_default_space_rung0_promotion_identical(self):
        # The acceptance surface on the real 104k space, kept to the
        # analytic rung so it runs in seconds: the guided sampler must
        # hand rung 1 the exact candidate set exhaustive enumeration
        # promotes.
        space = default_space()
        keep0 = 512
        report = RungReport("predict")
        exhaustive = _promote(
            _prescreen(space, space.configs(), report, {}), keep0, report
        )
        want = sorted(c.config.index for c in exhaustive)

        scores, sampler = guided_sample(space, keep0, _true_evaluator(space))
        got = sorted(
            stratified_top(
                {
                    i: (s, space.digits_at(i)[-1])
                    for i, s in scores.items()
                },
                keep0,
            )
        )
        assert got == want
        assert sampler.probed <= space.size()
