"""batch.epoch telemetry: emission, monitor folding, paper checks."""

import numpy as np

from repro.batch import CohortCell, CohortStepper, KiBaMCohort
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS
from repro.obs import Telemetry
from repro.obs.checks import (
    FrameDeadlineMonitor,
    LinkBusyFractionMonitor,
    replay,
)


def run_with_telemetry(n_cells=6, limit_s=400.0 * 3600.0):
    cells = [
        CohortCell(PAPER_KIBAM_PARAMETERS, ((80.0 + 10.0 * i, 1.0), (30.0, 1.3)))
        for i in range(n_cells)
    ]
    obs = Telemetry()
    result = CohortStepper(KiBaMCohort(cells), limit_s, obs=obs).run()
    return result, obs


class TestBatchEpochEvents:
    def test_one_event_per_epoch(self):
        result, obs = run_with_telemetry()
        events = [e for e in obs.events.records if e.kind == "batch.epoch"]
        assert len(events) == result.epochs
        assert all(e.actor == "batch" for e in events)

    def test_frames_accounting_is_exact(self):
        """Summed per-epoch frames equal the cohort's total cycles."""
        result, obs = run_with_telemetry()
        folded = sum(
            e.data["frames"]
            for e in obs.events.records
            if e.kind == "batch.epoch"
        )
        assert folded == int(result.cycles.sum())

    def test_counters(self):
        result, obs = run_with_telemetry()
        counters = {
            c["name"]: c["value"] for c in obs.metrics.as_dict()["counters"]
        }
        assert counters["batch.cells"] == 6
        assert counters["batch.epochs"] == result.epochs
        assert counters["batch.frames"] == int(result.cycles.sum())
        assert counters["batch.root_solves"] == result.root_solves

    def test_epoch_timestamps_are_monotonic(self):
        _, obs = run_with_telemetry()
        ts = [e.ts for e in obs.events.records if e.kind == "batch.epoch"]
        assert ts == sorted(ts)


class TestMonitorFolding:
    def test_frame_deadline_monitor_folds_batch_epochs(self):
        result, obs = run_with_telemetry()
        monitor = FrameDeadlineMonitor(deadline_s=2.3)
        verdicts = replay(obs.events, [monitor])
        assert verdicts[0].ok
        # Batched frames count toward coverage, like ff.epoch frames.
        assert monitor.frames == int(result.cycles.sum())
        assert monitor.events_seen == result.epochs

    def test_link_busy_monitor_accepts_batch_epochs(self):
        """Analytic sweeps have no link; the span folds, nothing trips."""
        _, obs = run_with_telemetry()
        monitor = LinkBusyFractionMonitor()
        verdicts = replay(obs.events, [monitor])
        assert verdicts[0].ok
        assert monitor.events_seen > 0

    def test_streaming_attach_matches_replay(self):
        cells = [CohortCell(PAPER_KIBAM_PARAMETERS, ((120.0, 1.1),))]
        obs = Telemetry()
        streamed = FrameDeadlineMonitor(deadline_s=2.3)
        obs.events.attach(streamed)
        CohortStepper(KiBaMCohort(cells), 400.0 * 3600.0, obs=obs).run()
        replayed = FrameDeadlineMonitor(deadline_s=2.3)
        replay(obs.events, [replayed])
        assert streamed.frames == replayed.frames
        assert streamed.events_seen == replayed.events_seen
