"""batch_sweep: spec enumeration, scalar equivalence, executor wiring."""

import pytest

from repro.analysis.sensitivity import PARAMETERS, sensitivity_sweep
from repro.batch.sweep import (
    BatchSweepSpec,
    SweepPoint,
    batch_sweep,
    evaluate_points_batch,
    point_reference_scalar,
    verify_sample,
)
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.obs import Telemetry


class TestBatchSweepSpec:
    def test_grid_point_count(self):
        assert len(BatchSweepSpec(grid=3).points()) == 81
        assert len(BatchSweepSpec(grid=2).points()) == 16
        assert len(BatchSweepSpec(grid=1).points()) == 1

    def test_one_at_a_time_matches_classic_shape(self):
        points = BatchSweepSpec(grid=3, mode="one_at_a_time").points()
        assert points[0].label == "nominal"
        assert len(points) == 1 + 2 * len(PARAMETERS)

    def test_parameter_subset_restricts_axes(self):
        spec = BatchSweepSpec(grid=3, parameters=("capacity", "c"))
        assert len(spec.points()) == 9
        for point in spec.points():
            assert point.factors[2] == 1.0 and point.factors[3] == 1.0

    def test_axis_factors_span(self):
        factors = BatchSweepSpec(grid=3, rel_span=0.10).axis_factors()
        assert factors == (0.9, 1.0, 1.1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"grid": 0},
            {"rel_span": 0.0},
            {"rel_span": 1.0},
            {"mode": "sideways"},
            {"parameters": ("capacity", "bogus")},
            {"parameters": ()},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchSweepSpec(**kwargs)

    def test_nominal_point_resolves_to_calibrated_constants(self):
        from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS
        from repro.hw.power import PAPER_POWER_MODEL

        _, battery, power = SweepPoint("nominal", (1.0, 1.0, 1.0, 1.0)).task()
        assert battery == PAPER_KIBAM_PARAMETERS
        assert power.io_activity == PAPER_POWER_MODEL.io_activity


class TestScalarEquivalence:
    def test_one_at_a_time_matches_sensitivity_sweep_bitwise(self):
        spec = BatchSweepSpec(grid=3, rel_span=0.10, mode="one_at_a_time")
        batch = evaluate_points_batch(spec.points())
        scalar = sensitivity_sweep()
        assert list(batch.outcomes) == scalar

    def test_sensitivity_sweep_batch_flag(self):
        assert sensitivity_sweep(batch=True) == sensitivity_sweep()

    def test_grid_matches_point_reference_scalar(self):
        """Every config of a 16-point grid: outcome and frame identity."""
        spec = BatchSweepSpec(grid=2, rel_span=0.10)
        points = spec.points()
        batch = evaluate_points_batch(points)
        for i, point in enumerate(points):
            outcome, cycles = point_reference_scalar(point)
            assert batch.outcomes[i] == outcome, point.label
            assert batch.cycles[i] == cycles, point.label

    def test_verify_sample_passes(self):
        result = batch_sweep(BatchSweepSpec(grid=2))
        report = verify_sample(result, sample=4)
        assert report.ok
        assert report.checked == 4
        assert report.frames_identical
        assert report.max_rel_err == 0.0
        assert report.mismatches == ()


class TestExecutorWiring:
    SPEC = BatchSweepSpec(grid=2)  # 16 configs

    def test_chunking_is_invisible(self):
        whole = batch_sweep(self.SPEC, chunk_size=100)
        chunked = batch_sweep(self.SPEC, chunk_size=5)
        assert chunked.stats.chunks == 4
        assert whole.outcomes == chunked.outcomes
        assert whole.cycles == chunked.cycles

    def test_parallel_matches_serial(self):
        serial = batch_sweep(self.SPEC, jobs=1, chunk_size=4)
        parallel = batch_sweep(self.SPEC, jobs=2, chunk_size=4)
        assert serial.outcomes == parallel.outcomes
        assert serial.cycles == parallel.cycles

    def test_cache_replay_is_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = batch_sweep(self.SPEC, cache=cache, chunk_size=4)
        assert first.stats.executed == 4 and first.stats.cache_hits == 0
        replay = batch_sweep(self.SPEC, cache=cache, chunk_size=4)
        assert replay.stats.executed == 0 and replay.stats.cache_hits == 4
        assert replay.outcomes == first.outcomes
        assert replay.cycles == first.cycles

    def test_telemetry_folds_identically_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")

        def epoch_events(obs):
            return [
                (e.kind, e.ts, e.actor, sorted(e.data.items()))
                for e in obs.events.records
                if e.kind == "batch.epoch"
            ]

        live = Telemetry()
        batch_sweep(self.SPEC, cache=cache, chunk_size=4, obs=live, events=True)
        cached = Telemetry()
        batch_sweep(self.SPEC, cache=cache, chunk_size=4, obs=cached, events=True)
        assert epoch_events(live) == epoch_events(cached)
        assert len(epoch_events(live)) > 0

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            batch_sweep(self.SPEC, chunk_size=0)

    def test_stats_and_summary(self):
        result = batch_sweep(self.SPEC, chunk_size=8)
        assert result.stats.configs == 16
        assert result.stats.cells == 64
        assert result.stats.configs_per_sec > 0
        summary = result.summary()
        assert summary["configs"] == 16
        # The paper's ordering is robust across +/-10% perturbations.
        assert summary["ordering_fraction"] == 1.0
        assert summary["frames"] == sum(sum(c) for c in result.cycles)
