"""Vector chemistry kernels vs the scalar battery models (the oracle).

These property tests pin the exactness contract documented in
``repro.batch.chemistries``: linear and Rakhmatov kernels are
bit-identical to the scalar models; the Peukert kernel is bit-identical
on its default (``exact=True``) path and within
:data:`PEUKERT_VECTOR_RTOL` on the fully-vectorized path.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.batch.chemistries import (
    PEUKERT_VECTOR_RTOL,
    linear_step,
    peukert_rates,
    peukert_step,
    rakhmatov_decay_rates,
    rakhmatov_step,
)
from repro.errors import BatteryError
from repro.hw.battery import LinearBattery, PeukertBattery
from repro.hw.battery.rakhmatov import RakhmatovBattery

currents = st.lists(st.floats(0.0, 500.0), min_size=1, max_size=16)
durations = st.lists(st.floats(0.0, 3600.0), min_size=1, max_size=16)


def paired(draw_currents, draw_durations):
    n = min(len(draw_currents), len(draw_durations))
    return draw_currents[:n], draw_durations[:n]


class TestLinear:
    @given(cur=currents, dur=durations, capacity=st.floats(10.0, 5000.0))
    @settings(max_examples=100, deadline=None)
    def test_bit_identical_to_scalar_preview(self, cur, dur, capacity):
        cur, dur = paired(cur, dur)
        cells = [LinearBattery(capacity) for _ in cur]
        remaining = np.array([c.remaining_mas for c in cells])
        stepped = linear_step(remaining, np.array(cur), np.array(dur))
        for i, cell in enumerate(cells):
            assert stepped[i] == cell.preview(cur[i], dur[i])

    def test_sequential_steps_track_draw(self):
        cell = LinearBattery(100.0)
        remaining = np.array([cell.remaining_mas])
        for current, dt in ((50.0, 10.0), (120.0, 5.0), (0.0, 100.0)):
            remaining = linear_step(remaining, np.array([current]), np.array([dt]))
            cell.draw(current, dt)
            assert remaining[0] == cell.remaining_mas

    def test_rejects_negative_inputs(self):
        with pytest.raises(BatteryError):
            linear_step(np.zeros(1), np.array([-1.0]), np.ones(1))


class TestPeukert:
    @given(
        cur=currents,
        reference=st.floats(10.0, 200.0),
        exponent=st.floats(1.0, 1.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_exact_rates_bit_identical(self, cur, reference, exponent):
        battery = PeukertBattery(100.0, reference_ma=reference, exponent=exponent)
        rates = peukert_rates(np.array(cur), reference, exponent, exact=True)
        for i, current in enumerate(cur):
            assert rates[i] == battery.effective_rate(current)

    @given(
        cur=currents,
        reference=st.floats(10.0, 200.0),
        exponent=st.floats(1.0, 1.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_vectorized_rates_within_documented_noise(self, cur, reference, exponent):
        """numpy's pow differs from Python's by ULPs, never more."""
        battery = PeukertBattery(100.0, reference_ma=reference, exponent=exponent)
        rates = peukert_rates(np.array(cur), reference, exponent, exact=False)
        for i, current in enumerate(cur):
            want = battery.effective_rate(current)
            if want == 0.0:
                assert rates[i] == 0.0
            else:
                assert abs(rates[i] - want) / want <= PEUKERT_VECTOR_RTOL

    @given(cur=currents, dur=durations)
    @settings(max_examples=50, deadline=None)
    def test_step_bit_identical_to_scalar_preview(self, cur, dur):
        cur, dur = paired(cur, dur)
        cells = [PeukertBattery(100.0) for _ in cur]
        remaining = np.array([c._remaining_effective_mas for c in cells])
        stepped = peukert_step(
            remaining, np.array(cur), np.array(dur),
            reference_ma=60.0, exponent=1.2,
        )
        for i, cell in enumerate(cells):
            assert stepped[i] == cell.preview(cur[i], dur[i])

    def test_rejects_bad_parameters(self):
        with pytest.raises(BatteryError):
            peukert_rates(np.ones(1), reference_ma=0.0, exponent=1.2)
        with pytest.raises(BatteryError):
            peukert_rates(np.ones(1), reference_ma=60.0, exponent=0.9)


class TestRakhmatov:
    @given(
        cur=currents,
        dur=st.lists(st.floats(0.001, 3600.0), min_size=1, max_size=16),
        beta=st.floats(0.01, 0.1),
        n_terms=st.integers(1, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_bit_identical_to_scalar_advance(self, cur, dur, beta, n_terms):
        cur, dur = paired(cur, dur)
        cells = [
            RakhmatovBattery(500.0, beta_per_sqrt_s=beta, n_terms=n_terms)
            for _ in cur
        ]
        rates = rakhmatov_decay_rates(beta, n_terms)
        assert (rates == cells[0]._rates).all()
        s = np.zeros((len(cur), n_terms))
        a = np.zeros(len(cur))
        s, a, sigma = rakhmatov_step(
            s, a, np.array(cur), np.array(dur), rates
        )
        for i, cell in enumerate(cells):
            assert sigma[i] == cell.preview(cur[i], dur[i])
            if cell.time_to_death(cur[i]) <= dur[i]:
                continue  # draw() rightly refuses a lethal segment
            cell.draw(cur[i], dur[i])
            assert (s[i] == cell._s_mas).all()
            assert a[i] == cell._a_mas
            assert sigma[i] == cell.apparent_charge_mas

    def test_recovery_at_rest_matches_scalar(self):
        """Harmonics decay identically through the vector kernel."""
        cell = RakhmatovBattery(500.0)
        cell.draw(200.0, 600.0)
        s = cell._s_mas[None, :].copy()
        a = np.array([cell._a_mas])
        rates = rakhmatov_decay_rates(cell.beta, cell.n_terms)
        s, a, sigma = rakhmatov_step(
            s, a, np.array([0.0]), np.array([300.0]), rates
        )
        cell.draw(0.0, 300.0)
        assert (s[0] == cell._s_mas).all()
        assert sigma[0] == cell.apparent_charge_mas

    def test_rejects_bad_shapes(self):
        rates = rakhmatov_decay_rates(0.03, 4)
        with pytest.raises(BatteryError):
            rakhmatov_step(
                np.zeros(4), np.zeros(1), np.ones(1), np.ones(1), rates
            )
