"""Cohort stepper vs the scalar reference loop: bit-identity."""

import math
import random

import numpy as np
import pytest

from repro.batch import CohortCell, CohortStepper, KiBaMCohort
from repro.errors import BatteryError
from repro.hw.battery.kibam import (
    KiBaM,
    KiBaMParameters,
    PAPER_KIBAM_PARAMETERS,
    lifetime_seconds,
)


def random_cells(n, seed):
    """Random (parameters, ragged cycle) rows spanning the model family."""
    rng = random.Random(seed)
    cells = []
    for _ in range(n):
        params = KiBaMParameters(
            capacity_mah=PAPER_KIBAM_PARAMETERS.capacity_mah * rng.uniform(0.5, 1.5),
            c=min(0.95, PAPER_KIBAM_PARAMETERS.c * rng.uniform(0.5, 2.0)),
            k_prime_per_hour=PAPER_KIBAM_PARAMETERS.k_prime_per_hour
            * rng.uniform(0.5, 2.0),
        )
        cycle = tuple(
            (rng.uniform(20.0, 400.0), rng.uniform(0.05, 3.0))
            for _ in range(rng.randint(1, 5))
        )
        cells.append(CohortCell(params, cycle))
    return cells


class TestCohortCell:
    def test_rejects_empty_cycle(self):
        with pytest.raises(BatteryError):
            CohortCell(PAPER_KIBAM_PARAMETERS, ())

    def test_rejects_negative_current(self):
        with pytest.raises(BatteryError):
            CohortCell(PAPER_KIBAM_PARAMETERS, ((-1.0, 1.0),))

    def test_rejects_zero_total_duration(self):
        with pytest.raises(BatteryError):
            CohortCell(PAPER_KIBAM_PARAMETERS, ((100.0, 0.0),))


class TestKiBaMCohort:
    def test_rejects_empty_cohort(self):
        with pytest.raises(BatteryError):
            KiBaMCohort([])

    def test_initial_wells_match_scalar(self):
        cells = random_cells(8, seed=3)
        cohort = KiBaMCohort(cells)
        for i, cell in enumerate(cells):
            scalar = KiBaM(cell.params)
            assert cohort.y1[i] == scalar.available_mas
            assert cohort.y2[i] == scalar.bound_mas

    def test_cycle_map_matches_scalar(self):
        cells = random_cells(8, seed=4)
        cohort = KiBaMCohort(cells)
        for i, cell in enumerate(cells):
            coeffs, drain = KiBaM(cell.params).cycle_map(cell.cycle)
            got = (
                cohort.a11[i], cohort.a12[i], cohort.a21[i],
                cohort.a22[i], cohort.b1[i], cohort.b2[i],
            )
            # The scalar map composes with math.exp factors and plain
            # float arithmetic; the cohort must land on the same bits.
            assert got == coeffs
            assert cohort.drain[i] == drain

    def test_advance_matches_scalar_advance_cycles(self):
        cells = random_cells(6, seed=5)
        cohort = KiBaMCohort(cells)
        rows = np.arange(len(cells))
        counts = np.array([1, 2, 7, 30, 101, 255])
        cohort.advance(rows, counts)
        for i, cell in enumerate(cells):
            scalar = KiBaM(cell.params)
            scalar.advance_cycles(cell.cycle, int(counts[i]))
            assert cohort.y1[i] == scalar.available_mas
            assert cohort.y2[i] == scalar.bound_mas
            assert cohort.delivered_mas[i] == scalar._delivered_mas

    def test_advance_guard_refuses_crossing_death(self):
        cell = CohortCell(PAPER_KIBAM_PARAMETERS, ((200.0, 1.0),))
        cohort = KiBaMCohort([cell])
        with pytest.raises(BatteryError, match="margin"):
            cohort.advance(np.array([0]), np.array([10_000_000]))

    def test_scalar_cell_round_trips_state(self):
        cells = random_cells(3, seed=6)
        cohort = KiBaMCohort(cells)
        cohort.advance(np.arange(3), np.array([5, 5, 5]))
        for i in range(3):
            clone = cohort.scalar_cell(i)
            assert clone.available_mas == cohort.y1[i]
            assert clone.bound_mas == cohort.y2[i]
            assert clone._delivered_mas == cohort.delivered_mas[i]


class TestStepperEquivalence:
    LIMIT_S = 400.0 * 3600.0

    def test_bitwise_identical_to_scalar_reference(self):
        """Death times AND completed-cycle counts match bit for bit."""
        cells = random_cells(80, seed=42)
        cohort = KiBaMCohort(cells)
        result = CohortStepper(cohort, self.LIMIT_S).run()
        for i, cell in enumerate(cells):
            death_s, cycles = lifetime_seconds(
                KiBaM(cell.params), list(cell.cycle), self.LIMIT_S
            )
            assert result.cycles[i] == cycles, f"row {i}: frame counts differ"
            assert result.death_s[i] == death_s, f"row {i}: death times differ"

    def test_horizon_survivors_report_inf(self):
        # A tiny current cannot kill the paper cell within one hour.
        cell = CohortCell(PAPER_KIBAM_PARAMETERS, ((0.5, 10.0),))
        cohort = KiBaMCohort([cell])
        result = CohortStepper(cohort, 3600.0).run()
        assert math.isinf(result.death_s[0])
        death_s, cycles = lifetime_seconds(
            KiBaM(cell.params), [(0.5, 10.0)], 3600.0
        )
        assert math.isinf(death_s)
        assert result.cycles[0] == cycles

    def test_ragged_cycles_share_one_cohort(self):
        """Mixed 1..5-segment rows do not perturb each other."""
        cells = random_cells(12, seed=7)
        together = CohortStepper(KiBaMCohort(cells), self.LIMIT_S).run()
        for i, cell in enumerate(cells):
            alone = CohortStepper(KiBaMCohort([cell]), self.LIMIT_S).run()
            assert together.death_s[i] == alone.death_s[0]
            assert together.cycles[i] == alone.cycles[0]

    def test_rejects_nonpositive_horizon(self):
        cohort = KiBaMCohort([CohortCell(PAPER_KIBAM_PARAMETERS, ((100.0, 1.0),))])
        with pytest.raises(BatteryError):
            CohortStepper(cohort, 0.0)
