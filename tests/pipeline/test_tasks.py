"""Partitions of the block chain."""

import pytest

from repro.apps.atr.profile import PAPER_PROFILE
from repro.errors import ConfigurationError
from repro.pipeline.tasks import Partition, enumerate_partitions
from repro.units import kb_to_bytes


class TestPartition:
    def test_single_node_partition(self):
        p = Partition(PAPER_PROFILE)
        assert p.n_stages == 1
        a = p.stage(0)
        assert a.recv_bytes == kb_to_bytes(10.1)
        assert a.send_bytes == kb_to_bytes(0.1)
        assert a.proc_seconds_at_max == pytest.approx(1.1)

    def test_scheme1_accounting_matches_fig8(self):
        """Scheme 1: payloads 10.7 KB / 0.7 KB per Fig. 8."""
        p = Partition(PAPER_PROFILE, [1])
        n1, n2 = p.assignments
        assert n1.comm_payload_bytes == kb_to_bytes(10.7)
        assert n2.comm_payload_bytes == kb_to_bytes(0.7)

    def test_scheme2_accounting_matches_fig8(self):
        p = Partition(PAPER_PROFILE, [2])
        n1, n2 = p.assignments
        assert n1.comm_payload_bytes == kb_to_bytes(17.6)
        assert n2.comm_payload_bytes == kb_to_bytes(7.6)

    def test_scheme3_accounting_matches_fig8(self):
        p = Partition(PAPER_PROFILE, [3])
        n1, n2 = p.assignments
        assert n1.comm_payload_bytes == kb_to_bytes(17.6)
        assert n2.comm_payload_bytes == kb_to_bytes(7.6)

    def test_stages_cover_chain_exactly(self):
        p = Partition(PAPER_PROFILE, [1, 3])
        ranges = [(a.block_start, a.block_stop) for a in p.assignments]
        assert ranges == [(0, 1), (1, 3), (3, 4)]

    def test_work_conserved_across_stages(self):
        p = Partition(PAPER_PROFILE, [2])
        total = sum(a.proc_seconds_at_max for a in p.assignments)
        assert total == pytest.approx(PAPER_PROFILE.total_seconds_at_max)

    def test_internal_payloads_chain(self):
        p = Partition(PAPER_PROFILE, [1])
        assert p.stage(0).send_bytes == p.stage(1).recv_bytes

    def test_describe(self):
        p = Partition(PAPER_PROFILE, [1])
        assert p.describe() == "(target_detection) (fft + ifft + compute_distance)"

    @pytest.mark.parametrize("cuts", [[0], [4], [2, 2], [3, 1]])
    def test_invalid_cuts_rejected(self, cuts):
        with pytest.raises(ConfigurationError):
            Partition(PAPER_PROFILE, cuts)

    def test_stage_index_validated(self):
        p = Partition(PAPER_PROFILE, [1])
        with pytest.raises(ConfigurationError):
            p.stage(2)


class TestMerged:
    def test_merge_all_equals_single_node(self):
        p = Partition(PAPER_PROFILE, [1])
        merged = p.merged(0, 2)
        single = Partition(PAPER_PROFILE).stage(0)
        assert merged.proc_seconds_at_max == pytest.approx(single.proc_seconds_at_max)
        assert merged.recv_bytes == single.recv_bytes
        assert merged.send_bytes == single.send_bytes

    def test_merge_subrange(self):
        p = Partition(PAPER_PROFILE, [1, 2])
        merged = p.merged(1, 3)
        assert merged.block_names == ("fft", "ifft", "compute_distance")

    def test_invalid_merge_rejected(self):
        p = Partition(PAPER_PROFILE, [1])
        with pytest.raises(ConfigurationError):
            p.merged(1, 1)


class TestEnumeration:
    def test_two_way_yields_three_schemes(self):
        """The paper's Fig. 8 enumerates exactly three 2-node schemes."""
        assert len(enumerate_partitions(PAPER_PROFILE, 2)) == 3

    def test_counts_are_binomial(self):
        # C(3, k-1) contiguous partitions of a 4-block chain.
        assert len(enumerate_partitions(PAPER_PROFILE, 1)) == 1
        assert len(enumerate_partitions(PAPER_PROFILE, 3)) == 3
        assert len(enumerate_partitions(PAPER_PROFILE, 4)) == 1

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            enumerate_partitions(PAPER_PROFILE, 0)
        with pytest.raises(ConfigurationError):
            enumerate_partitions(PAPER_PROFILE, 5)
