"""Scripted failures: the recovery protocol under fault injection.

Battery exhaustion always kills the heavy node first; ``fail_at`` lets
tests kill any node at any instant — mid-transfer, mid-PROC, during the
pipeline fill — and check the §5.4 protocol copes.
"""

import pytest

from repro.core.policies import DVSDuringIOPolicy, PinnedLevelsPolicy
from repro.errors import SimulationError
from repro.hw import SA1100_TABLE
from repro.hw.power import PAPER_POWER_MODEL
from repro.pipeline.engine import PipelineEngine
from repro.sim import Simulator
from tests.conftest import tiny_battery_factory
from tests.pipeline.test_engine import make_config

D = 2.3


def recovery_engine(**kwargs):
    cfg = make_config(
        cuts=(1,),
        policy=DVSDuringIOPolicy(PinnedLevelsPolicy([73.7, 118.0])),
        recovery=True,
        **kwargs,
    )
    return PipelineEngine(cfg)


class TestFailAt:
    def test_past_failure_rejected(self, sim, tiny_battery):
        from repro.hw import ItsyNode

        node = ItsyNode(sim, "n", tiny_battery, PAPER_POWER_MODEL, SA1100_TABLE)
        sim.timeout(5.0)
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            node.fail_at(1.0)

    def test_forced_death_fires_event(self, sim, tiny_battery):
        from repro.hw import ItsyNode

        node = ItsyNode(sim, "n", tiny_battery, PAPER_POWER_MODEL, SA1100_TABLE)
        node.fail_at(3.0)
        sim.run(until=10.0)
        assert node.is_dead
        assert node.death_time_s == pytest.approx(3.0)
        assert node.died.processed

    def test_double_failure_harmless(self, sim, tiny_battery):
        from repro.hw import ItsyNode

        node = ItsyNode(sim, "n", tiny_battery, PAPER_POWER_MODEL, SA1100_TABLE)
        node.fail_at(3.0)
        node.fail_at(4.0)
        sim.run(until=10.0)
        assert node.death_time_s == pytest.approx(3.0)


class TestInjectedFailuresDuringRecovery:
    @pytest.mark.parametrize("fail_time", [5.0, 23.5, 24.6, 100.1])
    def test_node2_killed_at_arbitrary_instant(self, fail_time):
        """Wherever node2 dies — waiting, mid-PROC, mid-transfer — node1
        detects the loss and carries the whole chain on."""
        engine = recovery_engine()
        engine.nodes["node2"].fail_at(fail_time)
        result = engine.run()
        assert result.migrations
        mig_time, survivor = result.migrations[0]
        assert survivor == "node1"
        # Detection needs at most the protocol timeout plus one frame.
        assert mig_time <= fail_time + 6.9 + D + 1.0
        assert result.last_result_s > fail_time

    def test_node1_killed_early(self):
        """Killing the front node during the fill still hands the host
        connection to node2."""
        engine = recovery_engine()
        engine.nodes["node1"].fail_at(1.0)
        result = engine.run()
        assert result.migrations
        assert result.migrations[0][1] == "node2"
        assert result.frames_completed > 10

    def test_without_recovery_injected_failure_stalls(self):
        engine = PipelineEngine(make_config(cuts=(1,)))
        engine.nodes["node2"].fail_at(30.0)
        result = engine.run()
        assert result.end_reason == "stall"
        assert result.frames_completed <= 30.0 / D + 2
