"""Recovery protocol configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.pipeline.recovery import RecoveryConfig


class TestRecoveryConfig:
    def test_defaults_valid(self):
        cfg = RecoveryConfig()
        assert cfg.detect_timeout_s == pytest.approx(3 * 2.3)

    def test_ack_duration_is_startup_dominated(self):
        cfg = RecoveryConfig(ack_payload_bytes=0)
        # A 0-byte ack costs exactly one transaction startup — the
        # paper's "separate transaction, typically 50-100 ms".
        assert cfg.ack_duration_s(PAPER_LINK_TIMING) == pytest.approx(0.09)

    def test_ack_payload_adds_wire_time(self):
        cfg = RecoveryConfig(ack_payload_bytes=100)
        assert cfg.ack_duration_s(PAPER_LINK_TIMING) == pytest.approx(
            0.09 + 100 * 8 / 80_000
        )

    def test_per_frame_overhead_scales_with_transactions(self):
        cfg = RecoveryConfig()
        one = cfg.per_frame_overhead_s(PAPER_LINK_TIMING, 1)
        two = cfg.per_frame_overhead_s(PAPER_LINK_TIMING, 2)
        assert two == pytest.approx(2 * one)

    def test_zero_transactions_zero_overhead(self):
        assert RecoveryConfig().per_frame_overhead_s(PAPER_LINK_TIMING, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RecoveryConfig(ack_payload_bytes=-1)
        with pytest.raises(ConfigurationError):
            RecoveryConfig(detect_timeout_s=0.0)
        cfg = RecoveryConfig()
        with pytest.raises(ConfigurationError):
            cfg.per_frame_overhead_s(PAPER_LINK_TIMING, -1)

    def test_migrated_levels_optional(self):
        cfg = RecoveryConfig(
            migrated_comp_level=SA1100_TABLE.max,
            migrated_io_level=SA1100_TABLE.min,
        )
        assert cfg.migrated_comp_level.mhz == 206.4
        assert cfg.migrated_io_level.mhz == 59.0
