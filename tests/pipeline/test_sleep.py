"""Sleep-in-slack extension."""

import pytest

from repro.core.policies import DVSDuringIOPolicy, SlowestFeasiblePolicy
from repro.errors import ConfigurationError
from repro.hw.power import PAPER_POWER_MODEL, PowerMode
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.rotation import RotationController
from repro.pipeline.workload import ConstantWorkload
from repro.sim import TraceRecorder
from tests.conftest import tiny_battery_factory
from tests.pipeline.test_engine import make_config

D = 2.3


class TestNodeSleep:
    def test_sleep_draws_flat_current(self, sim, tiny_battery):
        from repro.hw import ItsyNode, SA1100_TABLE

        trace = TraceRecorder()
        node = ItsyNode(
            sim, "n", tiny_battery, PAPER_POWER_MODEL, SA1100_TABLE, trace=trace
        )

        def body(node):
            yield from node.sleep_for(10.0, wake_latency_s=0.5)

        p = node.spawn(body(node))
        sim.run(until=p)
        segs = {s.activity: s for s in trace.segments("n")}
        assert segs["sleep"].current_ma == pytest.approx(PAPER_POWER_MODEL.sleep_ma)
        assert segs["sleep"].duration == pytest.approx(10.0)
        # Wake-up charged at computation current.
        comp = PAPER_POWER_MODEL.current_ma(PowerMode.COMPUTATION, node.level)
        assert segs["wake"].current_ma == pytest.approx(comp)
        assert segs["wake"].duration == pytest.approx(0.5)

    def test_zero_sleep_noop(self, sim, tiny_battery):
        from repro.hw import ItsyNode, SA1100_TABLE

        node = ItsyNode(sim, "n", tiny_battery, PAPER_POWER_MODEL, SA1100_TABLE)

        def body(node):
            yield from node.sleep_for(0.0)
            yield node.sim.timeout(0.0)

        node.spawn(body(node))
        sim.run(until=1.0)
        assert node.mode is PowerMode.IDLE


class TestEngineSleep:
    def test_throughput_preserved(self):
        cfg = make_config(cuts=(1,), max_frames=30)
        cfg.sleep_in_slack = True
        result = PipelineEngine(cfg).run()
        assert result.frames_completed == 30
        assert result.mean_result_period_s() == pytest.approx(D, rel=1e-6)
        assert result.late_results == 0

    def test_sleep_extends_lightly_loaded_node(self):
        """Node1 idles ~0.5 s per frame; sleeping it must add lifetime."""
        plain = PipelineEngine(make_config(cuts=(1,))).run()
        cfg = make_config(cuts=(1,))
        cfg.sleep_in_slack = True
        slept = PipelineEngine(cfg).run()
        assert slept.frames_completed > plain.frames_completed

    def test_sleep_segments_recorded(self):
        trace = TraceRecorder()
        cfg = make_config(cuts=(1,), max_frames=10, trace=trace)
        cfg.sleep_in_slack = True
        PipelineEngine(cfg).run()
        sleeps = [s for s in trace.segments("node1") if s.activity == "sleep"]
        assert sleeps
        # The baseline-tight node2 may or may not have enough slack;
        # node1 definitely sleeps most of its frame slack.
        assert sleeps[0].duration > 0.2

    def test_incompatible_with_rotation(self):
        cfg = make_config(cuts=(1,), max_frames=5)
        cfg.rotation = RotationController(10, 2)
        cfg.sleep_in_slack = True
        with pytest.raises(ConfigurationError):
            cfg.__post_init__()

    def test_incompatible_with_workload(self):
        cfg = make_config(cuts=(1,), max_frames=5)
        cfg.workload = ConstantWorkload(1.1)
        cfg.sleep_in_slack = True
        with pytest.raises(ConfigurationError):
            cfg.__post_init__()
