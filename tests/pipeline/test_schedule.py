"""Static frame schedules and required-frequency arithmetic (Fig. 8)."""

import pytest

from repro.apps.atr.profile import PAPER_PROFILE
from repro.errors import DeadlineMissError, InfeasiblePartitionError
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.pipeline.schedule import plan_node, required_frequency_mhz
from repro.pipeline.tasks import Partition

D = 2.3


class TestPaperScheme1:
    """The headline Fig. 8 row: 59 / 103.2 MHz."""

    def test_node1_level(self):
        p = Partition(PAPER_PROFILE, [1])
        plan = plan_node(p.stage(0), PAPER_LINK_TIMING, D, SA1100_TABLE)
        assert plan.level.mhz == 59.0

    def test_node2_level(self):
        p = Partition(PAPER_PROFILE, [1])
        plan = plan_node(p.stage(1), PAPER_LINK_TIMING, D, SA1100_TABLE)
        assert plan.level.mhz == 103.2

    def test_schedules_fit_deadline(self):
        p = Partition(PAPER_PROFILE, [1])
        for stage in p.assignments:
            plan = plan_node(stage, PAPER_LINK_TIMING, D, SA1100_TABLE)
            assert plan.schedule.feasible
            assert plan.schedule.busy_s <= D + 1e-9


class TestPaperScheme3Infeasible:
    def test_node1_requires_more_than_max(self):
        p = Partition(PAPER_PROFILE, [3])
        req = required_frequency_mhz(p.stage(0), PAPER_LINK_TIMING, D, SA1100_TABLE)
        assert req > 206.4
        # The paper quotes ~380 MHz; our normalized profile gives ~357.
        assert req == pytest.approx(380.0, rel=0.1)

    def test_plan_raises(self):
        p = Partition(PAPER_PROFILE, [3])
        with pytest.raises(InfeasiblePartitionError):
            plan_node(p.stage(0), PAPER_LINK_TIMING, D, SA1100_TABLE)


class TestBaseline:
    def test_single_node_needs_max_level(self):
        p = Partition(PAPER_PROFILE)
        plan = plan_node(p.stage(0), PAPER_LINK_TIMING, D, SA1100_TABLE)
        assert plan.level.mhz == 206.4
        # The baseline is exactly tight: 1.1 + 1.1 + 0.1 = 2.3.
        assert plan.schedule.slack_s == pytest.approx(0.0, abs=1e-9)


class TestOverheadAndPinning:
    def test_overhead_shrinks_budget(self):
        p = Partition(PAPER_PROFILE, [1])
        base = required_frequency_mhz(p.stage(1), PAPER_LINK_TIMING, D, SA1100_TABLE)
        with_acks = required_frequency_mhz(
            p.stage(1), PAPER_LINK_TIMING, D, SA1100_TABLE, overhead_s=0.18
        )
        assert with_acks > base

    def test_paper_2b_node2_level_derivable(self):
        """With two ack transactions, Node2's requirement rounds to 118 MHz
        — the operating point the paper measured for experiment (2B)."""
        p = Partition(PAPER_PROFILE, [1])
        overhead = 2 * PAPER_LINK_TIMING.duration(0)
        plan = plan_node(
            p.stage(1), PAPER_LINK_TIMING, D, SA1100_TABLE, overhead_s=overhead
        )
        assert plan.level.mhz == 118.0

    def test_pinned_level_validated(self):
        p = Partition(PAPER_PROFILE, [1])
        # Pinning a too-slow level for Node2 must fail loudly.
        with pytest.raises(DeadlineMissError):
            plan_node(
                p.stage(1),
                PAPER_LINK_TIMING,
                D,
                SA1100_TABLE,
                level=SA1100_TABLE.level_at(59.0),
            )

    def test_pinned_level_accepted_when_feasible(self):
        p = Partition(PAPER_PROFILE, [1])
        plan = plan_node(
            p.stage(1),
            PAPER_LINK_TIMING,
            D,
            SA1100_TABLE,
            level=SA1100_TABLE.level_at(118.0),
        )
        assert plan.level.mhz == 118.0
        assert plan.schedule.slack_s > 0

    def test_comm_only_overload_infeasible(self):
        p = Partition(PAPER_PROFILE)
        with pytest.raises(InfeasiblePartitionError):
            plan_node(p.stage(0), PAPER_LINK_TIMING, 1.0, SA1100_TABLE)


class TestFrameScheduleProperties:
    def test_busy_plus_slack_is_deadline(self):
        p = Partition(PAPER_PROFILE, [1])
        plan = plan_node(p.stage(0), PAPER_LINK_TIMING, D, SA1100_TABLE)
        s = plan.schedule
        assert s.busy_s + s.slack_s == pytest.approx(D)

    def test_comm_time_matches_link_model(self):
        p = Partition(PAPER_PROFILE, [1])
        plan = plan_node(p.stage(0), PAPER_LINK_TIMING, D, SA1100_TABLE)
        expected = PAPER_LINK_TIMING.duration(10_100) + PAPER_LINK_TIMING.duration(600)
        assert plan.schedule.comm_s == pytest.approx(expected)

    def test_required_mhz_recorded(self):
        p = Partition(PAPER_PROFILE, [1])
        plan = plan_node(p.stage(0), PAPER_LINK_TIMING, D, SA1100_TABLE)
        # Node1's continuous requirement is ~32 MHz (rounds up to 59).
        assert plan.required_mhz == pytest.approx(32.0, abs=3.0)
