"""Variable workload models and adaptive per-frame DVS."""

import numpy as np
import pytest

from repro.core.policies import DVSDuringIOPolicy, SlowestFeasiblePolicy
from repro.errors import ConfigurationError
from repro.pipeline.engine import PipelineConfig, PipelineEngine, RoleConfig
from repro.pipeline.workload import (
    BurstyWorkload,
    ConstantWorkload,
    TraceWorkload,
    UniformWorkload,
)
from tests.conftest import tiny_battery_factory
from tests.pipeline.test_engine import make_config


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModels:
    def test_constant(self, rng):
        model = ConstantWorkload(1.2)
        assert model.scale_for(0, rng) == 1.2
        assert model.scale_for(99, rng) == 1.2

    def test_uniform_bounds(self, rng):
        model = UniformWorkload(0.5, 1.5)
        scales = [model.scale_for(i, rng) for i in range(200)]
        assert all(0.5 <= s <= 1.5 for s in scales)
        assert max(scales) - min(scales) > 0.5  # actually varies

    def test_bursty_alternates(self, rng):
        model = BurstyWorkload(
            calm_scale=0.8, burst_scale=1.4, burst_prob=0.2, burst_length=3
        )
        scales = [model.scale_for(i, rng) for i in range(300)]
        assert set(scales) == {0.8, 1.4}
        # Bursts come in runs of exactly burst_length.
        runs, current = [], 0
        for s in scales:
            if s == 1.4:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs
        assert all(r % 3 == 0 for r in runs)  # back-to-back bursts merge

    def test_trace_replays_and_wraps(self, rng):
        model = TraceWorkload([1.0, 1.2, 0.8])
        assert [model.scale_for(i, rng) for i in range(6)] == [
            1.0, 1.2, 0.8, 1.0, 1.2, 0.8,
        ]

    def test_trace_hold_mode(self, rng):
        model = TraceWorkload([1.0, 1.3], wrap=False)
        assert model.scale_for(5, rng) == 1.3

    def test_trace_describe(self, rng):
        assert "Trace(2" in TraceWorkload([1.0, 1.1]).describe()

    @pytest.mark.parametrize(
        "ctor",
        [
            lambda: ConstantWorkload(0.0),
            lambda: UniformWorkload(0.0, 1.0),
            lambda: UniformWorkload(1.5, 1.0),
            lambda: BurstyWorkload(burst_prob=1.5),
            lambda: BurstyWorkload(burst_length=0),
            lambda: TraceWorkload([]),
            lambda: TraceWorkload([1.0, -0.5]),
        ],
    )
    def test_validation(self, ctor):
        with pytest.raises(ConfigurationError):
            ctor()

    def test_describe_labels(self, rng):
        assert "Uniform" in UniformWorkload().describe()
        assert "Bursty" in BurstyWorkload().describe()


class TestEngineIntegration:
    def test_constant_above_one_makes_results_late(self):
        """A uniformly heavier workload than planned runs late every frame."""
        cfg = make_config(cuts=(1,), max_frames=20)
        cfg.workload = ConstantWorkload(1.3)
        result = PipelineEngine(cfg).run()
        assert result.frames_completed == 20
        assert result.late_results > 0

    def test_light_workload_never_late(self):
        cfg = make_config(cuts=(1,), max_frames=20)
        cfg.workload = ConstantWorkload(0.8)
        result = PipelineEngine(cfg).run()
        assert result.late_results == 0

    def test_workload_draws_reproducible(self):
        def run(seed):
            cfg = make_config(cuts=(1,), max_frames=60)
            cfg.workload = UniformWorkload(0.7, 1.3)
            cfg.seed = seed
            return PipelineEngine(cfg).run()

        a, b = run(5), run(5)
        assert a.late_results == b.late_results
        assert a.result_times_s == b.result_times_s

    def test_adaptive_dvs_requires_budgets(self):
        cfg = make_config(cuts=(1,), max_frames=5)
        stripped = tuple(
            RoleConfig(rc.assignment, rc.comp_level, rc.io_level)
            for rc in cfg.roles
        )
        with pytest.raises(ConfigurationError):
            PipelineConfig(
                partition=cfg.partition,
                roles=stripped,
                node_names=cfg.node_names,
                battery_factory=tiny_battery_factory,
                adaptive_workload_dvs=True,
            )

    def test_adaptive_dvs_reduces_lateness_under_bursts(self):
        def run(adaptive):
            cfg = make_config(
                cuts=(1,),
                policy=DVSDuringIOPolicy(SlowestFeasiblePolicy()),
                max_frames=150,
            )
            cfg.workload = BurstyWorkload(
                calm_scale=0.9, burst_scale=1.25, burst_prob=0.1, burst_length=4
            )
            cfg.adaptive_workload_dvs = adaptive
            cfg.seed = 11
            return PipelineEngine(cfg).run()

        static = run(False)
        adaptive = run(True)
        assert adaptive.late_results < static.late_results
        assert adaptive.max_lateness_s <= static.max_lateness_s + 1e-9

    def test_adaptive_dvs_saves_energy_on_light_frames(self):
        """With a calm workload, adaptive DVS clocks down and spends less."""

        def run(adaptive):
            cfg = make_config(cuts=(), max_frames=60)
            cfg.workload = ConstantWorkload(0.6)
            cfg.adaptive_workload_dvs = adaptive
            return PipelineEngine(cfg).run()

        static = run(False)
        adaptive = run(True)
        assert (
            adaptive.delivered_mah["node1"] < static.delivered_mah["node1"]
        )
