"""Rotation schedule arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.rotation import RotationController


class TestValidation:
    def test_period_must_cover_depth(self):
        with pytest.raises(ConfigurationError):
            RotationController(period=1, n_stages=2)
        with pytest.raises(ConfigurationError):
            RotationController(period=2, n_stages=3)

    def test_single_stage_rejected(self):
        with pytest.raises(ConfigurationError):
            RotationController(period=10, n_stages=1)

    def test_negative_reconfig_rejected(self):
        with pytest.raises(ConfigurationError):
            RotationController(period=10, n_stages=2, reconfig_seconds=-1.0)


class TestSchedule:
    def test_role0_rotates_at_period_boundaries(self):
        ctl = RotationController(period=100, n_stages=2)
        assert not ctl.is_rotation_frame(0, 0)
        assert ctl.is_rotation_frame(99, 0)
        assert not ctl.is_rotation_frame(100, 0)
        assert ctl.is_rotation_frame(199, 0)

    def test_deeper_roles_lag_by_depth(self):
        ctl = RotationController(period=100, n_stages=3)
        # Event k anchors at f_k = 100k - 1 for role 0; role r acts on f_k - r.
        assert ctl.is_rotation_frame(99, 0)
        assert ctl.is_rotation_frame(98, 1)
        assert ctl.is_rotation_frame(97, 2)

    def test_exactly_one_role_rotates_per_frame_window(self):
        ctl = RotationController(period=10, n_stages=2)
        for k in range(1, 5):
            f = 10 * k - 1
            assert ctl.is_rotation_frame(f, 0)
            assert ctl.is_rotation_frame(f - 1, 1)

    def test_negative_frame_rejected(self):
        ctl = RotationController(period=10, n_stages=2)
        with pytest.raises(ConfigurationError):
            ctl.is_rotation_frame(-1, 0)


class TestHolderArithmetic:
    def test_last_node_rotates_to_front(self):
        """§5.5: "the last node is rotated to the front of the pipeline"."""
        ctl = RotationController(period=100, n_stages=3)
        assert ctl.role0_holder_index(0) == 0
        assert ctl.role0_holder_index(100) == 2   # last node now first
        assert ctl.role0_holder_index(200) == 1
        assert ctl.role0_holder_index(300) == 0   # full cycle

    def test_role_of_node_inverse(self):
        ctl = RotationController(period=100, n_stages=3)
        for frame in (0, 100, 200, 500):
            holder = ctl.role0_holder_index(frame)
            assert ctl.role_of_node(holder, frame) == 0

    def test_roles_cover_all_stages(self):
        ctl = RotationController(period=100, n_stages=4)
        for frame in (0, 100, 300):
            roles = {ctl.role_of_node(i, frame) for i in range(4)}
            assert roles == {0, 1, 2, 3}

    def test_epoch_of_frame(self):
        ctl = RotationController(period=100, n_stages=2)
        assert ctl.epoch_of_frame(0) == 0
        assert ctl.epoch_of_frame(99) == 0
        assert ctl.epoch_of_frame(100) == 1


class TestEpochBoundaries:
    """Boundary frames around k*period after the floor-division cleanup."""

    def test_boundary_frame_starts_the_new_epoch(self):
        ctl = RotationController(period=10, n_stages=3)
        for k in range(1, 6):
            assert ctl.epoch_of_frame(k * 10 - 1) == k - 1
            assert ctl.epoch_of_frame(k * 10) == k
            assert ctl.epoch_of_frame(k * 10 + 1) == k

    def test_holder_changes_exactly_at_the_boundary(self):
        ctl = RotationController(period=10, n_stages=3)
        for k in range(1, 6):
            before = ctl.role0_holder_index(k * 10 - 1)
            after = ctl.role0_holder_index(k * 10)
            assert after == (before - 1) % 3
            assert ctl.role0_holder_index(k * 10 + 1) == after

    def test_rotation_frames_anchor_one_before_the_boundary(self):
        """Role 0 transitions on k*period - 1, role r sits r frames earlier."""
        ctl = RotationController(period=10, n_stages=3)
        for k in range(1, 4):
            boundary = k * 10
            for role in range(3):
                assert ctl.is_rotation_frame(boundary - 1 - role, role)
                assert not ctl.is_rotation_frame(boundary, role)

    def test_minimum_period_equals_depth(self):
        # The tightest legal schedule: every role transitions every epoch.
        ctl = RotationController(period=3, n_stages=3)
        assert ctl.epoch_of_frame(2) == 0
        assert ctl.epoch_of_frame(3) == 1
        assert ctl.is_rotation_frame(2, 0)
        assert ctl.is_rotation_frame(1, 1)
        assert ctl.is_rotation_frame(0, 2)
        assert ctl.role0_holder_index(3) == 2

    def test_frame_zero_is_epoch_zero_for_any_period(self):
        for period in (2, 3, 7, 100):
            ctl = RotationController(period=period, n_stages=2)
            assert ctl.epoch_of_frame(0) == 0
            assert ctl.role0_holder_index(0) == 0
