"""The pipeline execution engine, on fast-dying tiny batteries."""

import pytest

from repro.apps.atr.profile import PAPER_PROFILE
from repro.core.policies import (
    BaselinePolicy,
    DVSDuringIOPolicy,
    PinnedLevelsPolicy,
    SlowestFeasiblePolicy,
)
from repro.errors import ConfigurationError
from repro.hw.dvs import SA1100_TABLE
from repro.hw.link import PAPER_LINK_TIMING
from repro.pipeline.engine import PipelineConfig, PipelineEngine
from repro.pipeline.recovery import RecoveryConfig
from repro.pipeline.rotation import RotationController
from repro.pipeline.schedule import plan_node
from repro.pipeline.tasks import Partition
from repro.sim import TraceRecorder
from tests.conftest import tiny_battery_factory

D = 2.3


def make_config(
    cuts=(),
    policy=None,
    rotation_period=None,
    recovery=False,
    max_frames=None,
    trace=None,
    overheads=None,
    **kwargs,
):
    partition = Partition(PAPER_PROFILE, cuts)
    rec = None
    if recovery:
        rec = RecoveryConfig(
            migrated_comp_level=SA1100_TABLE.max,
            migrated_io_level=SA1100_TABLE.min,
        )
    plans = []
    for i, a in enumerate(partition.assignments):
        overhead = 0.0
        if rec is not None:
            n_acked = (1 if i > 0 else 0) + (1 if i < partition.n_stages - 1 else 0)
            if not rec.acks_between_nodes_only:
                n_acked += (1 if i == 0 else 0) + (
                    1 if i == partition.n_stages - 1 else 0
                )
            overhead = rec.per_frame_overhead_s(PAPER_LINK_TIMING, n_acked)
        plans.append(
            plan_node(a, PAPER_LINK_TIMING, D, SA1100_TABLE, overhead_s=overhead)
        )
    policy = policy or DVSDuringIOPolicy(SlowestFeasiblePolicy())
    roles = policy.role_configs(plans, SA1100_TABLE)
    rotation = None
    if rotation_period:
        rotation = RotationController(rotation_period, partition.n_stages)
    return PipelineConfig(
        partition=partition,
        roles=roles,
        node_names=tuple(f"node{i+1}" for i in range(partition.n_stages)),
        battery_factory=tiny_battery_factory,
        deadline_s=D,
        rotation=rotation,
        recovery=rec,
        max_frames=max_frames,
        trace=trace,
        monitor_interval_s=None,
        **kwargs,
    )


class TestSingleNode:
    def test_throughput_one_result_per_period(self):
        result = PipelineEngine(make_config(policy=BaselinePolicy(), max_frames=20)).run()
        assert result.frames_completed == 20
        assert result.mean_result_period_s() == pytest.approx(D, rel=1e-6)

    def test_first_result_latency(self):
        result = PipelineEngine(make_config(policy=BaselinePolicy(), max_frames=1)).run()
        # One frame passes RECV+PROC+SEND = exactly D in the baseline.
        assert result.result_times_s[0] == pytest.approx(D, rel=1e-6)

    def test_runs_to_battery_death(self):
        result = PipelineEngine(make_config(policy=BaselinePolicy())).run()
        assert result.end_reason in ("all-dead", "stall")
        assert result.frames_completed > 10
        assert "node1" in result.death_times_s

    def test_dvs_during_io_outlives_baseline(self):
        base = PipelineEngine(make_config(policy=BaselinePolicy())).run()
        dvs = PipelineEngine(
            make_config(policy=DVSDuringIOPolicy(BaselinePolicy()))
        ).run()
        assert dvs.frames_completed > base.frames_completed


class TestTwoNodePipeline:
    def test_pipeline_throughput(self):
        result = PipelineEngine(make_config(cuts=(1,), max_frames=30)).run()
        assert result.frames_completed == 30
        assert result.mean_result_period_s() == pytest.approx(D, rel=1e-6)

    def test_pipeline_fill_latency(self):
        result = PipelineEngine(make_config(cuts=(1,), max_frames=1)).run()
        # Two stages: the first result needs more than one frame delay
        # (the pipeline must fill) but at most 2 * D (the paper's bound).
        assert D < result.result_times_s[0] <= 2 * D + 1e-9

    def test_stall_on_first_death_without_recovery(self):
        result = PipelineEngine(make_config(cuts=(1,))).run()
        assert result.end_reason == "stall"
        # Node2 carries the heavier load and dies first.
        assert "node2" in result.death_times_s
        assert "node1" not in result.death_times_s

    def test_frames_match_stall_time(self):
        result = PipelineEngine(make_config(cuts=(1,))).run()
        expected = result.last_result_s / D
        assert result.frames_completed == pytest.approx(expected, abs=2)

    def test_partitioned_outlives_single_node_absolute(self):
        single = PipelineEngine(
            make_config(policy=DVSDuringIOPolicy(BaselinePolicy()))
        ).run()
        double = PipelineEngine(make_config(cuts=(1,))).run()
        assert double.frames_completed > single.frames_completed

    def test_host_transactions_traced(self):
        """The host's sends and receives appear as trace rows too."""
        trace = TraceRecorder()
        PipelineEngine(make_config(cuts=(1,), max_frames=4, trace=trace)).run()
        host_segments = trace.segments("host")
        sends = [s for s in host_segments if s.activity == "send"]
        recvs = [s for s in host_segments if s.activity == "recv"]
        assert len(sends) >= 4
        assert len(recvs) == 4
        # The host's send is the node's recv, byte for byte.
        node_recvs = [s for s in trace.segments("node1") if s.activity == "recv"]
        assert sends[0].start == pytest.approx(node_recvs[0].start)
        assert sends[0].end == pytest.approx(node_recvs[0].end)

    def test_trace_shows_overlapping_send_recv(self):
        """Fig. 3: Node1's SEND overlaps Node2's RECV in the same slot."""
        trace = TraceRecorder()
        PipelineEngine(make_config(cuts=(1,), max_frames=5, trace=trace)).run()
        sends = [s for s in trace.segments("node1") if s.activity == "send"]
        recvs = [s for s in trace.segments("node2") if s.activity == "recv"]
        assert sends and recvs
        assert sends[0].start == pytest.approx(recvs[0].start)
        assert sends[0].end == pytest.approx(recvs[0].end)

    def test_per_node_counters_exposed(self):
        result = PipelineEngine(make_config(cuts=(1,), max_frames=10)).run()
        # Each stage touches every frame once in a 2-stage pipeline.
        assert result.frames_processed["node1"] >= 10
        assert result.frames_processed["node2"] == 10
        # DVS-during-I/O toggles node2 between levels; node1's io and
        # comp levels coincide at 59 MHz.
        assert result.level_switches["node2"] > 0
        assert result.level_switches["node1"] == 0

    def test_delivered_charge_tracked_per_node(self):
        result = PipelineEngine(make_config(cuts=(1,), max_frames=10)).run()
        assert result.delivered_mah["node1"] > 0
        assert result.delivered_mah["node2"] > 0
        # Node2 computes much more; it must have drawn more charge.
        assert result.delivered_mah["node2"] > result.delivered_mah["node1"]


class TestRotation:
    def test_throughput_preserved_through_rotations(self):
        result = PipelineEngine(
            make_config(cuts=(1,), rotation_period=10, max_frames=45)
        ).run()
        assert result.frames_completed == 45
        assert result.mean_result_period_s() == pytest.approx(D, rel=1e-3)

    def test_both_nodes_serve_both_roles(self):
        trace = TraceRecorder()
        PipelineEngine(
            make_config(cuts=(1,), rotation_period=10, max_frames=35, trace=trace)
        ).run()
        for name in ("node1", "node2"):
            levels = {
                s.frequency_mhz
                for s in trace.segments(name)
                if s.activity == "proc"
            }
            # Role 0 computes at 59 MHz, role 1 at 103.2: both appear.
            assert {59.0, 103.2} <= levels

    def test_rotation_balances_death_times(self):
        plain = PipelineEngine(make_config(cuts=(1,))).run()
        rotated = PipelineEngine(
            make_config(cuts=(1,), rotation_period=10)
        ).run()
        # Rotation extends useful lifetime (frames completed).
        assert rotated.frames_completed > plain.frames_completed
        # And both batteries die close together.
        assert len(rotated.death_times_s) >= 1
        if len(rotated.death_times_s) == 2:
            times = sorted(rotated.death_times_s.values())
            assert times[1] - times[0] < 0.2 * times[1]

    def test_three_stage_rotation(self):
        """§5.5 generalizes beyond two nodes: a 3-stage pipeline rotates
        role 0 through all three physical nodes without losing frames."""
        trace = TraceRecorder()
        result = PipelineEngine(
            make_config(
                cuts=(1, 3), rotation_period=5, max_frames=32, trace=trace
            )
        ).run()
        assert result.frames_completed == 32
        assert result.mean_result_period_s() == pytest.approx(D, rel=0.02)
        # Every node eventually receives frames from the host (role 0):
        # host-link RECVs are the long 10.1 KB transactions (~1.1 s).
        for name in ("node1", "node2", "node3"):
            recvs = [s for s in trace.segments(name) if s.activity == "recv"]
            assert any(s.duration > 1.0 for s in recvs), name

    def test_rotation_with_reconfig_cost_still_works(self):
        cfg = make_config(cuts=(1,), max_frames=25)
        cfg.rotation = RotationController(10, 2, reconfig_seconds=0.05)
        result = PipelineEngine(cfg).run()
        assert result.frames_completed == 25


class TestRecovery:
    def test_migration_continues_pipeline(self):
        result = PipelineEngine(
            make_config(
                cuts=(1,),
                policy=DVSDuringIOPolicy(PinnedLevelsPolicy([73.7, 118.0])),
                recovery=True,
            )
        ).run()
        assert result.migrations, "no migration happened"
        mig_time, survivor = result.migrations[0]
        assert survivor == "node1"
        assert result.end_reason == "all-dead"
        # Progress continued after the first death.
        first_death = min(result.death_times_s.values())
        assert result.last_result_s > first_death

    def test_recovery_beats_stall(self):
        pinned = DVSDuringIOPolicy(PinnedLevelsPolicy([73.7, 118.0]))
        stall = PipelineEngine(make_config(cuts=(1,))).run()
        recover = PipelineEngine(
            make_config(cuts=(1,), policy=pinned, recovery=True)
        ).run()
        assert recover.frames_completed > stall.frames_completed

    def test_upstream_death_redirects_host_source(self):
        """If the *first* node dies, the survivor must take over frame
        intake from the host (the stage-0 handoff path)."""
        from repro.hw.battery import KiBaM
        from tests.conftest import TINY_KIBAM
        import dataclasses

        capacities = iter([6.0, 40.0])  # node1 much smaller: dies first

        def uneven_factory():
            return KiBaM(
                dataclasses.replace(TINY_KIBAM, capacity_mah=next(capacities))
            )

        cfg = make_config(
            cuts=(1,),
            policy=DVSDuringIOPolicy(PinnedLevelsPolicy([73.7, 118.0])),
            recovery=True,
        )
        cfg.battery_factory = uneven_factory
        result = PipelineEngine(cfg).run()
        assert result.migrations
        _, survivor = result.migrations[0]
        assert survivor == "node2"
        assert "node1" in result.death_times_s
        # The survivor kept delivering after node1's death.
        assert result.last_result_s > result.death_times_s["node1"]

    def test_ack_segments_present(self):
        trace = TraceRecorder()
        PipelineEngine(
            make_config(
                cuts=(1,),
                policy=DVSDuringIOPolicy(PinnedLevelsPolicy([73.7, 118.0])),
                recovery=True,
                max_frames=5,
                trace=trace,
            )
        ).run()
        acks = [s for s in trace.all_segments() if s.activity == "ack"]
        assert acks


class TestStochasticTiming:
    def test_deterministic_runs_have_no_lateness(self):
        result = PipelineEngine(make_config(cuts=(1,), max_frames=50)).run()
        assert result.late_results == 0
        assert result.max_lateness_s == pytest.approx(0.0, abs=1e-9)

    def test_jittered_runs_reproducible_per_seed(self):
        from repro.hw.link import PAPER_LINK_TIMING_JITTERED

        def run(seed):
            cfg = make_config(cuts=(1,), max_frames=100, timing=PAPER_LINK_TIMING_JITTERED)
            cfg.seed = seed
            return PipelineEngine(cfg).run()

        a, b = run(7), run(7)
        assert a.result_times_s == b.result_times_s
        assert (a.max_lateness_s, a.late_results) == (b.max_lateness_s, b.late_results)
        c = run(8)
        assert a.result_times_s != c.result_times_s

    def test_partitioned_pipeline_absorbs_jitter(self):
        """The 2-stage pipeline's ~0.8 s of end-to-end slack swallows
        the paper's full 50-100 ms startup spread."""
        from repro.hw.link import PAPER_LINK_TIMING_JITTERED

        cfg = make_config(cuts=(1,), max_frames=200, timing=PAPER_LINK_TIMING_JITTERED)
        cfg.seed = 3
        result = PipelineEngine(cfg).run()
        assert result.late_results == 0

    def test_zero_slack_baseline_drifts_under_jitter(self):
        """The single-node baseline schedule is exactly tight (2.3 s of
        work in a 2.3 s frame at the 90 ms mean startup): zero-mean
        jitter around that point accumulates as a random walk and
        produces real deadline misses. (PAPER_LINK_TIMING_JITTERED has
        a 75 ms mean, which *creates* slack — use a zero-slack mean.)"""
        from repro.hw.link import TransactionTiming

        timing = TransactionTiming(
            bandwidth_bps=80_000.0, startup_s=0.09, startup_jitter_s=0.025
        )
        cfg = make_config(policy=BaselinePolicy(), max_frames=300, timing=timing)
        cfg.seed = 3
        result = PipelineEngine(cfg).run()
        assert result.late_results > 0
        assert result.max_lateness_s > 0.05


class TestStoreAndForward:
    def test_scheme1_still_runs_with_doubled_internode_cost(self):
        result = PipelineEngine(
            make_config(cuts=(1,), max_frames=20, store_and_forward=True)
        ).run()
        assert result.frames_completed == 20
        assert result.mean_result_period_s() == pytest.approx(D, rel=1e-6)

    def test_validation_uses_internode_timing(self):
        """A schedule that fits under cut-through must be re-checked
        against the doubled inter-node cost (here: tightened deadline)."""
        from repro.errors import ScheduleError

        # At D=2.29 the cut-through schedule still fits (node2 busy
        # 2.14s) but store-and-forward recv (0.6 KB -> 0.24s) pushes
        # node2 past it... use a deadline between the two busy times.
        cfg = make_config(cuts=(1,), max_frames=5, validate_schedules=False)
        cfg.deadline_s = 2.25
        cfg.store_and_forward = True
        cfg.validate_schedules = True
        with pytest.raises(ScheduleError):
            PipelineEngine(cfg)


class TestTermination:
    def test_max_frames(self):
        result = PipelineEngine(make_config(cuts=(1,), max_frames=7)).run()
        assert result.frames_completed == 7
        assert result.end_reason == "max-frames"

    def test_horizon(self):
        cfg = make_config(policy=BaselinePolicy())
        cfg.horizon_s = 30.0
        result = PipelineEngine(cfg).run()
        assert result.end_reason == "horizon"
        assert result.end_time_s <= 40.0


class TestValidation:
    def test_roles_must_match_partition(self):
        cfg = make_config(cuts=(1,))
        with pytest.raises(ConfigurationError):
            PipelineConfig(
                partition=cfg.partition,
                roles=cfg.roles[:1],
                node_names=("a",),
                battery_factory=tiny_battery_factory,
            )

    def test_rotation_and_recovery_exclusive(self):
        cfg = make_config(cuts=(1,))
        with pytest.raises(ConfigurationError):
            PipelineConfig(
                partition=cfg.partition,
                roles=cfg.roles,
                node_names=cfg.node_names,
                battery_factory=tiny_battery_factory,
                rotation=RotationController(10, 2),
                recovery=RecoveryConfig(),
            )

    def test_infeasible_pinned_schedule_rejected_up_front(self):
        from repro.errors import ScheduleError

        partition = Partition(PAPER_PROFILE, (1,))
        plans = [
            plan_node(a, PAPER_LINK_TIMING, D, SA1100_TABLE)
            for a in partition.assignments
        ]
        # Node2 pinned to 59 MHz cannot meet D.
        roles = PinnedLevelsPolicy([59.0, 59.0]).role_configs(plans, SA1100_TABLE)
        cfg = PipelineConfig(
            partition=partition,
            roles=roles,
            node_names=("node1", "node2"),
            battery_factory=tiny_battery_factory,
        )
        with pytest.raises(ScheduleError):
            PipelineEngine(cfg)

    def test_recovery_requires_two_nodes(self):
        partition = Partition(PAPER_PROFILE)
        plans = [plan_node(partition.stage(0), PAPER_LINK_TIMING, D, SA1100_TABLE)]
        roles = BaselinePolicy().role_configs(plans, SA1100_TABLE)
        with pytest.raises(ConfigurationError):
            PipelineConfig(
                partition=partition,
                roles=roles,
                node_names=("node1",),
                battery_factory=tiny_battery_factory,
                recovery=RecoveryConfig(),
            )
