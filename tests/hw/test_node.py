"""The Itsy node: power-mode machine, battery integration, death."""

import pytest

from repro.errors import SimulationError
from repro.hw import ItsyNode, SA1100_TABLE
from repro.hw.link import SerialLink
from repro.hw.power import PAPER_POWER_MODEL, PowerMode
from repro.sim import TraceRecorder
from tests.conftest import tiny_battery_factory


@pytest.fixture
def node(sim, tiny_battery):
    return ItsyNode(
        sim, "n1", tiny_battery, PAPER_POWER_MODEL, SA1100_TABLE,
        trace=TraceRecorder(),
    )


MAX = SA1100_TABLE.max
MIN = SA1100_TABLE.min


class TestStateMachine:
    def test_starts_idle_at_min(self, node):
        assert node.mode is PowerMode.IDLE
        assert node.level is MIN

    def test_set_state_changes_current(self, sim, node):
        node.set_state(PowerMode.COMPUTATION, MAX)
        assert node.current_ma == pytest.approx(130.0)

    def test_battery_integrated_lazily(self, sim, node):
        node.set_state(PowerMode.COMPUTATION, MAX)
        sim.timeout(10.0)
        sim.run(until=10.0)
        delivered_before = node.battery.delivered_mah
        node.set_state(PowerMode.IDLE, MIN)  # closes the segment
        assert node.battery.delivered_mah > delivered_before
        assert node.battery.delivered_mah == pytest.approx(130.0 * 10.0 / 3600.0)

    def test_trace_records_segments(self, sim, node):
        node.set_state(PowerMode.COMPUTATION, MAX, "proc")
        sim.timeout(5.0)
        sim.run(until=5.0)
        node.set_state(PowerMode.IDLE, MIN)
        segs = node.trace.segments("n1")
        assert len(segs) == 1
        assert segs[0].activity == "proc"
        assert segs[0].duration == pytest.approx(5.0)
        assert segs[0].current_ma == pytest.approx(130.0)

    def test_invalid_level_rejected(self, node):
        from repro.errors import ConfigurationError
        from repro.hw.dvs import FrequencyLevel

        with pytest.raises(ConfigurationError):
            node.set_state(PowerMode.IDLE, FrequencyLevel(100.0, 1.0))


class TestCompute:
    def test_compute_scales_with_level(self, sim, node):
        def body(node):
            yield from node.compute(1.0, SA1100_TABLE.level_at(103.2))

        p = node.spawn(body(node))
        sim.run(until=p)
        assert sim.now == pytest.approx(2.0)

    def test_compute_returns_to_idle(self, sim, node):
        def body(node):
            yield from node.compute(0.1, MAX)

        p = node.spawn(body(node))
        sim.run(until=p)
        assert node.mode is PowerMode.IDLE


class TestDeath:
    def test_death_during_constant_load(self, sim, node):
        def body(node):
            while True:
                yield from node.compute(1.0, MAX)

        node.spawn(body(node))
        expected = node.battery.time_to_death(130.0)
        sim.run()
        assert node.is_dead
        assert node.death_time_s == pytest.approx(expected, rel=1e-6)

    def test_died_event_fires(self, sim, node):
        def body(node):
            while True:
                yield from node.compute(1.0, MAX)

        node.spawn(body(node))
        sim.run()
        assert node.died.processed
        assert node.died.value.node == "n1"

    def test_attached_process_interrupted(self, sim, node):
        witnessed = []

        def body(node):
            try:
                while True:
                    yield from node.compute(1.0, MAX)
            finally:
                witnessed.append(node.sim.now)

        node.spawn(body(node))
        sim.run()
        assert witnessed == [node.death_time_s]

    def test_dead_node_rejects_set_state(self, sim, node):
        def body(node):
            while True:
                yield from node.compute(1.0, MAX)

        node.spawn(body(node))
        sim.run()
        with pytest.raises(SimulationError):
            node.set_state(PowerMode.IDLE)

    def test_death_mid_duty_cycle_is_exact(self, sim, node):
        """Death must interrupt a long segment, not wait for its end."""

        def body(node):
            while True:
                yield from node.compute(10.0, MAX)
                yield from node.idle_for(5.0)

        node.spawn(body(node))
        sim.run()
        assert node.is_dead
        # The battery's available well must be empty at death.
        assert node.battery.charge_fraction() < 1.0
        assert node.battery.available_mas == pytest.approx(0.0, abs=1e-3)

    def test_open_link_offers_cancelled_on_death(self, sim, node):
        link = SerialLink(sim, "n1", "peer")

        def body(node, link):
            while True:
                grant = link.offer_send("data", 100, frm="n1")
                tr = yield from node.transfer(link, grant, MIN, "send")
                del tr

        node.spawn(body(node, link))

        # Drain the node quickly with a parallel compute-heavy process...
        def burner(node):
            while True:
                yield from node.compute(50.0, MAX)

        node.spawn(burner(node))
        sim.run()
        assert node.is_dead
        # Peer arriving after death must not rendezvous with the corpse.
        matched = []

        def late_peer(sim, link):
            grant = link.offer_recv(to="peer")
            result = yield sim.any_of([grant, sim.timeout(1.0)])
            matched.append(grant.triggered)

        sim.process(late_peer(sim, link))
        sim.run()
        assert matched == [False]


class TestTransfer:
    def test_transfer_power_modes(self, sim, node):
        link = SerialLink(sim, "n1", "peer")
        modes = []

        def peer(sim, link):
            yield sim.timeout(1.0)
            tr = yield link.offer_recv(to="peer")
            yield tr.done

        def body(node, link):
            grant = link.offer_send("data", 8000, frm="n1")
            modes.append(node.activity)  # waiting
            tr = yield from node.transfer(link, grant, MIN, "send")
            modes.append(node.mode)
            return tr

        sim.process(peer(sim, link))
        p = node.spawn(body(node, link))
        sim.run()
        assert p.ok
        # While waiting the node idles; after completion it returns to idle.
        assert modes[-1] is PowerMode.IDLE
        segs = [s for s in node.trace.segments("n1") if s.activity == "send"]
        assert len(segs) == 1
        assert segs[0].start == pytest.approx(1.0)
        assert segs[0].duration == pytest.approx(0.09 + 8000 * 8 / 80_000)

    def test_transfer_or_timeout_times_out(self, sim, node):
        link = SerialLink(sim, "n1", "peer")

        def body(node, link):
            grant = link.offer_send("data", 100, frm="n1")
            tr = yield from node.transfer_or_timeout(link, grant, MIN, "send", 3.0)
            return tr

        p = node.spawn(body(node, link))
        sim.run(until=p)
        assert p.value is None
        assert sim.now == pytest.approx(3.0)
        assert link.pending_sends("n1") == 0  # offer withdrawn

    def test_transfer_or_timeout_success(self, sim, node):
        link = SerialLink(sim, "n1", "peer")

        def peer(sim, link):
            tr = yield link.offer_recv(to="peer")
            yield tr.done

        def body(node, link):
            grant = link.offer_send("data", 100, frm="n1")
            tr = yield from node.transfer_or_timeout(link, grant, MIN, "send", 3.0)
            return tr.message

        sim.process(peer(sim, link))
        p = node.spawn(body(node, link))
        sim.run(until=p)
        assert p.value == "data"

    def test_comm_delay_draws_comm_current(self, sim, node):
        def body(node):
            yield from node.comm_delay(1.0, MIN, "ack")

        node.spawn(body(node))
        sim.run()
        segs = [s for s in node.trace.segments("n1") if s.activity == "ack"]
        assert len(segs) == 1
        expected = PAPER_POWER_MODEL.current_ma(PowerMode.COMMUNICATION, MIN)
        assert segs[0].current_ma == pytest.approx(expected)


class TestReconfigure:
    def test_reconfigure_costs_computation_power(self, sim, node):
        def body(node):
            yield from node.reconfigure(0.5, "rotation")

        node.spawn(body(node))
        sim.run()
        segs = [s for s in node.trace.segments("n1") if s.activity == "reconfig"]
        assert len(segs) == 1
        assert segs[0].duration == pytest.approx(0.5)

    def test_zero_reconfigure_is_noop(self, sim, node):
        def body(node):
            yield from node.reconfigure(0.0)
            yield sim.timeout(0.0)

        node.spawn(body(node))
        sim.run()
        assert not [s for s in node.trace.segments("n1") if s.activity == "reconfig"]
