"""The Battery interface contract, enforced across every model.

Each battery model has its own physics; the simulator only relies on
the shared contract. This suite runs the same checks over all four so
a new model cannot silently break an engine assumption.
"""

import pytest

from repro.hw.battery import (
    KiBaM,
    KiBaMParameters,
    LinearBattery,
    PeukertBattery,
    RakhmatovBattery,
)

CAPACITY = 60.0


def fresh(kind):
    if kind == "kibam":
        return KiBaM(KiBaMParameters(CAPACITY, c=0.3, k_prime_per_hour=1.0))
    if kind == "linear":
        return LinearBattery(CAPACITY)
    if kind == "peukert":
        return PeukertBattery(CAPACITY, reference_ma=60.0, exponent=1.2)
    if kind == "rakhmatov":
        return RakhmatovBattery(CAPACITY, beta_per_sqrt_s=0.02)
    raise ValueError(kind)


MODELS = ["kibam", "linear", "peukert", "rakhmatov"]


@pytest.mark.parametrize("kind", MODELS)
class TestContract:
    def test_fresh_cell_full_and_alive(self, kind):
        cell = fresh(kind)
        assert cell.charge_fraction() == pytest.approx(1.0)
        assert not cell.is_dead
        assert cell.delivered_mah == 0.0

    def test_time_to_death_finite_under_load(self, kind):
        assert 0 < fresh(kind).time_to_death(100.0) < float("inf")

    def test_zero_current_sustainable(self, kind):
        assert fresh(kind).time_to_death(0.0) == float("inf")

    def test_lower_bound_never_exceeds_exact(self, kind):
        cell = fresh(kind)
        for current in (5.0, 50.0, 300.0):
            assert cell.time_to_death_lower_bound(current) <= cell.time_to_death(
                current
            ) * (1 + 1e-9)

    def test_draw_to_predicted_death_kills(self, kind):
        cell = fresh(kind)
        ttd = cell.time_to_death(150.0)
        cell.draw(150.0, ttd)
        assert cell.is_dead
        assert cell.time_to_death(150.0) == 0.0

    def test_overdraw_rejected(self, kind):
        from repro.errors import BatteryError

        cell = fresh(kind)
        ttd = cell.time_to_death(150.0)
        with pytest.raises(BatteryError):
            cell.draw(150.0, 2.5 * ttd)

    def test_negative_inputs_rejected(self, kind):
        from repro.errors import BatteryError

        cell = fresh(kind)
        with pytest.raises(BatteryError):
            cell.draw(-1.0, 1.0)
        with pytest.raises(BatteryError):
            cell.draw(1.0, -1.0)
        with pytest.raises(BatteryError):
            cell.time_to_death(-5.0)

    def test_delivered_charge_accounting(self, kind):
        cell = fresh(kind)
        cell.draw(30.0, 600.0)
        cell.draw(0.0, 600.0)
        cell.draw(10.0, 300.0)
        assert cell.delivered_mah == pytest.approx((30 * 600 + 10 * 300) / 3600.0)

    def test_reset_restores_factory_state(self, kind):
        cell = fresh(kind)
        cell.draw(100.0, 60.0)
        cell.reset()
        assert cell.charge_fraction() == pytest.approx(1.0)
        assert cell.delivered_mah == 0.0
        assert not cell.is_dead

    def test_lifetime_monotone_in_current(self, kind):
        cell = fresh(kind)
        lifetimes = [cell.time_to_death(i) for i in (20.0, 60.0, 180.0)]
        assert lifetimes == sorted(lifetimes, reverse=True)

    def test_runs_inside_the_node_state_machine(self, kind):
        """Every model must drive the node's death-event machinery."""
        from repro.hw import ItsyNode, SA1100_TABLE
        from repro.hw.power import PAPER_POWER_MODEL
        from repro.sim import Simulator

        sim = Simulator()
        node = ItsyNode(sim, "n", fresh(kind), PAPER_POWER_MODEL, SA1100_TABLE)

        def forever(node):
            while True:
                yield from node.compute(1.0, SA1100_TABLE.max)
                yield from node.idle_for(0.5)

        node.spawn(forever(node))
        sim.run()
        assert node.is_dead
        assert node.death_time_s is not None
