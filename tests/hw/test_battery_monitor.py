"""Battery telemetry."""

import pytest

from repro.hw.battery import BatteryMonitor, LinearBattery


@pytest.fixture
def monitored():
    cell = LinearBattery(100.0)
    return cell, BatteryMonitor(cell, sample_interval_s=10.0)


class TestAccounting:
    def test_charge_by_mode(self, monitored):
        cell, mon = monitored
        cell.draw(50.0, 10.0)
        mon.observe(10.0, 50.0, 10.0, "computation")
        cell.draw(20.0, 5.0)
        mon.observe(15.0, 20.0, 5.0, "communication")
        assert mon.charge_by_mode_mas["computation"] == pytest.approx(500.0)
        assert mon.charge_by_mode_mas["communication"] == pytest.approx(100.0)
        assert mon.total_charge_mas == pytest.approx(600.0)

    def test_time_by_mode(self, monitored):
        _, mon = monitored
        mon.observe(10.0, 50.0, 10.0, "idle")
        mon.observe(20.0, 50.0, 10.0, "idle")
        assert mon.time_by_mode_s["idle"] == pytest.approx(20.0)

    def test_mode_share(self, monitored):
        _, mon = monitored
        mon.observe(1.0, 100.0, 1.0, "computation")
        mon.observe(2.0, 100.0, 3.0, "communication")
        assert mon.mode_share("computation") == pytest.approx(0.25)

    def test_mode_share_empty(self, monitored):
        _, mon = monitored
        assert mon.mode_share("anything") == 0.0


class TestSampling:
    def test_samples_respect_interval(self, monitored):
        _, mon = monitored
        for i in range(100):
            mon.observe(i * 1.0, 10.0, 1.0, "idle")
        # 100 s of observations at >= 10 s spacing: at most 11 samples.
        assert 2 <= len(mon.samples) <= 11
        times = [s.time_s for s in mon.samples]
        assert all(b - a >= 10.0 for a, b in zip(times, times[1:]))

    def test_discharge_curve_is_nonincreasing(self, monitored):
        cell, mon = monitored
        for i in range(60):
            cell.draw(50.0, 60.0)
            mon.observe((i + 1) * 60.0, 50.0, 60.0, "computation")
        fractions = [f for _, f in mon.discharge_curve()]
        assert all(b <= a for a, b in zip(fractions, fractions[1:]))

    def test_samples_carry_mode(self, monitored):
        _, mon = monitored
        mon.observe(0.0, 10.0, 1.0, "communication")
        assert mon.samples[0].mode == "communication"
