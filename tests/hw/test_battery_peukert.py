"""Peukert battery: rate-capacity without recovery."""

import pytest

from repro.errors import BatteryError
from repro.hw.battery import PeukertBattery
from repro.units import mah_to_mas


class TestPeukert:
    def test_rated_current_delivers_rated_capacity(self):
        cell = PeukertBattery(100.0, reference_ma=50.0, exponent=1.2)
        t = cell.time_to_death(50.0)
        assert 50.0 * t == pytest.approx(mah_to_mas(100.0))

    def test_rate_capacity_effect(self):
        slow = PeukertBattery(100.0, reference_ma=50.0, exponent=1.2)
        fast = PeukertBattery(100.0, reference_ma=50.0, exponent=1.2)
        assert 25.0 * slow.time_to_death(25.0) > 200.0 * fast.time_to_death(200.0)

    def test_exponent_one_is_linear(self):
        cell = PeukertBattery(100.0, reference_ma=50.0, exponent=1.0)
        assert 25.0 * cell.time_to_death(25.0) == pytest.approx(
            200.0 * PeukertBattery(100.0, 50.0, 1.0).time_to_death(200.0)
        )

    def test_no_recovery(self):
        cell = PeukertBattery(100.0)
        cell.draw(120.0, 600.0)
        frac = cell.charge_fraction()
        cell.draw(0.0, 36000.0)
        assert cell.charge_fraction() == frac

    def test_peukert_law_shape(self):
        """t = C/I^p (scaled): doubling current divides life by 2^p."""
        p = 1.3
        cell_a = PeukertBattery(100.0, reference_ma=60.0, exponent=p)
        cell_b = PeukertBattery(100.0, reference_ma=60.0, exponent=p)
        ratio = cell_a.time_to_death(60.0) / cell_b.time_to_death(120.0)
        assert ratio == pytest.approx(2.0**p, rel=1e-9)

    def test_effective_rate_zero_current(self):
        assert PeukertBattery(100.0).effective_rate(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(BatteryError):
            PeukertBattery(100.0, reference_ma=0.0)
        with pytest.raises(BatteryError):
            PeukertBattery(100.0, exponent=0.9)

    def test_overdraw_rejected(self):
        cell = PeukertBattery(1.0, reference_ma=60.0)
        with pytest.raises(BatteryError):
            cell.draw(60.0, 2 * 3600.0)

    def test_reset(self):
        cell = PeukertBattery(10.0)
        cell.draw(60.0, 60.0)
        cell.reset()
        assert cell.charge_fraction() == 1.0
