"""Rakhmatov-Vrudhula diffusion battery."""

import pytest

from repro.errors import BatteryError
from repro.hw.battery import RakhmatovBattery
from repro.units import mah_to_mas


@pytest.fixture
def cell():
    return RakhmatovBattery(300.0, beta_per_sqrt_s=0.02)


class TestValidation:
    def test_bad_beta(self):
        with pytest.raises(BatteryError):
            RakhmatovBattery(100.0, beta_per_sqrt_s=0.0)

    def test_bad_terms(self):
        with pytest.raises(BatteryError):
            RakhmatovBattery(100.0, n_terms=0)

    def test_bad_capacity(self):
        with pytest.raises(BatteryError):
            RakhmatovBattery(0.0)


class TestStatics:
    def test_fresh_state(self, cell):
        assert cell.charge_fraction() == 1.0
        assert cell.apparent_charge_mas == 0.0
        assert not cell.is_dead

    def test_vanishing_rate_delivers_full_capacity(self):
        """As I -> 0, lifetime * I -> alpha (the defining property)."""
        cell = RakhmatovBattery(300.0, beta_per_sqrt_s=0.02)
        t = cell.time_to_death(1.0)
        assert 1.0 * t == pytest.approx(mah_to_mas(300.0), rel=0.02)

    def test_rate_capacity_effect(self):
        slow = RakhmatovBattery(300.0, beta_per_sqrt_s=0.02)
        fast = RakhmatovBattery(300.0, beta_per_sqrt_s=0.02)
        assert 20.0 * slow.time_to_death(20.0) > 130.0 * fast.time_to_death(130.0)

    def test_larger_beta_means_weaker_effects(self):
        """Fast diffusion approaches the ideal battery."""
        slow_diff = RakhmatovBattery(300.0, beta_per_sqrt_s=0.01)
        fast_diff = RakhmatovBattery(300.0, beta_per_sqrt_s=0.5)
        assert fast_diff.time_to_death(130.0) > slow_diff.time_to_death(130.0)


class TestRecovery:
    def test_rest_reduces_apparent_charge(self, cell):
        cell.draw(130.0, 600.0)
        sigma_loaded = cell.apparent_charge_mas
        cell.draw(0.0, 600.0)
        assert cell.apparent_charge_mas < sigma_loaded
        # Delivered charge is untouched by rest.
        assert cell.delivered_mah == pytest.approx(130.0 * 600.0 / 3600.0)

    def test_long_rest_recovers_all_unavailable_charge(self, cell):
        cell.draw(130.0, 600.0)
        cell.draw(0.0, 1e6)
        assert cell.unavailable_mas == pytest.approx(0.0, abs=1e-6)

    def test_pulsed_outlasts_continuous(self):
        continuous = RakhmatovBattery(300.0, beta_per_sqrt_s=0.02)
        t_cont = continuous.time_to_death(130.0)
        pulsed = RakhmatovBattery(300.0, beta_per_sqrt_s=0.02)
        delivered = 0.0
        while True:
            ttd = pulsed.time_to_death(130.0)
            if ttd <= 30.0:
                delivered += 130.0 * ttd
                break
            pulsed.draw(130.0, 30.0)
            delivered += 130.0 * 30.0
            pulsed.draw(0.0, 30.0)
        assert delivered > 130.0 * t_cont


class TestDeath:
    def test_prediction_consistent_with_stepping(self, cell):
        ttd = cell.time_to_death(130.0)
        cell.draw(130.0, ttd)
        assert cell.is_dead
        assert cell.time_to_death(130.0) == 0.0

    def test_lower_bound_is_lower(self, cell):
        for current in (10.0, 130.0, 400.0):
            assert cell.time_to_death_lower_bound(current) <= cell.time_to_death(
                current
            ) * (1 + 1e-12)

    def test_zero_current_never_dies(self, cell):
        assert cell.time_to_death(0.0) == float("inf")

    def test_negative_current_rejected(self, cell):
        with pytest.raises(BatteryError):
            cell.time_to_death(-1.0)

    def test_overdraw_rejected(self, cell):
        ttd = cell.time_to_death(130.0)
        with pytest.raises(BatteryError):
            cell.draw(130.0, 3 * ttd)

    def test_reset(self, cell):
        cell.draw(130.0, 100.0)
        cell.reset()
        assert cell.charge_fraction() == 1.0
        assert cell.unavailable_mas == 0.0


class TestNodeIntegration:
    def test_works_inside_the_node_state_machine(self):
        """The diffusion model plugs into the same death-event machinery."""
        from repro.hw import ItsyNode, SA1100_TABLE
        from repro.hw.power import PAPER_POWER_MODEL
        from repro.sim import Simulator

        sim = Simulator()
        cell = RakhmatovBattery(10.0, beta_per_sqrt_s=0.02)
        node = ItsyNode(sim, "n", cell, PAPER_POWER_MODEL, SA1100_TABLE)

        def forever(node):
            while True:
                yield from node.compute(1.0, SA1100_TABLE.max)

        node.spawn(forever(node))
        sim.run()
        assert node.is_dead
        assert node.death_time_s is not None
