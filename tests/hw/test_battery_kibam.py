"""KiBaM battery: closed form, death prediction, paper phenomena."""

import math

import pytest

from repro.errors import BatteryError
from repro.hw.battery import KiBaM, KiBaMParameters
from repro.hw.battery.kibam import PAPER_KIBAM_PARAMETERS
from repro.units import mah_to_mas


PARAMS = KiBaMParameters(capacity_mah=100.0, c=0.3, k_prime_per_hour=1.0)


@pytest.fixture
def cell():
    return KiBaM(PARAMS)


class TestParameters:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(capacity_mah=0.0, c=0.3, k_prime_per_hour=1.0),
            dict(capacity_mah=100.0, c=0.0, k_prime_per_hour=1.0),
            dict(capacity_mah=100.0, c=1.0, k_prime_per_hour=1.0),
            dict(capacity_mah=100.0, c=0.3, k_prime_per_hour=0.0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(BatteryError):
            KiBaMParameters(**kwargs)

    def test_rate_constant_units(self):
        p = KiBaMParameters(100.0, 0.3, 3600.0)
        assert p.k_prime_per_second == pytest.approx(1.0)


class TestInitialState:
    def test_wells_split_by_c(self, cell):
        total = mah_to_mas(100.0)
        assert cell.available_mas == pytest.approx(0.3 * total)
        assert cell.bound_mas == pytest.approx(0.7 * total)

    def test_full_charge_fraction(self, cell):
        assert cell.charge_fraction() == pytest.approx(1.0)

    def test_not_dead(self, cell):
        assert not cell.is_dead


class TestConservation:
    def test_charge_conserved_exactly(self, cell):
        cell.draw(50.0, 1800.0)
        total = cell.available_mas + cell.bound_mas
        assert total == pytest.approx(mah_to_mas(100.0) - 50.0 * 1800.0, rel=1e-12)

    def test_delivered_tracks_draw(self, cell):
        cell.draw(40.0, 3600.0)
        assert cell.delivered_mah == pytest.approx(40.0)

    def test_zero_duration_noop(self, cell):
        y1 = cell.available_mas
        cell.draw(50.0, 0.0)
        assert cell.available_mas == y1

    def test_many_small_steps_equal_one_big_step(self):
        a, b = KiBaM(PARAMS), KiBaM(PARAMS)
        a.draw(30.0, 3600.0)
        for _ in range(3600):
            b.draw(30.0, 1.0)
        assert a.available_mas == pytest.approx(b.available_mas, rel=1e-6)
        assert a.bound_mas == pytest.approx(b.bound_mas, rel=1e-6)


class TestRecoveryEffect:
    def test_rest_recovers_available_charge(self, cell):
        cell.draw(100.0, 600.0)
        before = cell.available_mas
        cell.draw(0.0, 1800.0)
        assert cell.available_mas > before

    def test_rest_conserves_total(self, cell):
        cell.draw(100.0, 600.0)
        total_before = cell.available_mas + cell.bound_mas
        cell.draw(0.0, 1800.0)
        assert cell.available_mas + cell.bound_mas == pytest.approx(total_before)

    def test_rest_approaches_equilibrium(self, cell):
        cell.draw(100.0, 600.0)
        cell.draw(0.0, 1e7)  # very long rest
        total = cell.available_mas + cell.bound_mas
        assert cell.available_mas == pytest.approx(PARAMS.c * total, rel=1e-6)

    def test_duty_cycle_delivers_more_than_continuous(self):
        """The paper's recovery-effect claim: resting stretches capacity."""
        continuous, pulsed = KiBaM(PARAMS), KiBaM(PARAMS)
        t_cont = continuous.time_to_death(120.0)
        # Pulsed: same 120 mA but with rests half the time.
        t, delivered = 0.0, 0.0
        while True:
            ttd = pulsed.time_to_death(120.0)
            if ttd <= 60.0:
                delivered += 120.0 * ttd
                break
            pulsed.draw(120.0, 60.0)
            delivered += 120.0 * 60.0
            pulsed.draw(0.0, 60.0)
        assert delivered > 120.0 * t_cont


class TestRateCapacityEffect:
    def test_high_rate_delivers_less(self):
        slow, fast = KiBaM(PARAMS), KiBaM(PARAMS)
        t_slow = slow.time_to_death(20.0)
        t_fast = fast.time_to_death(200.0)
        assert 20.0 * t_slow > 200.0 * t_fast

    def test_death_leaves_bound_charge_stranded(self, cell):
        ttd = cell.time_to_death(300.0)
        cell.draw(300.0, ttd)
        assert cell.available_mas == pytest.approx(0.0, abs=1e-3)
        assert cell.bound_mas > 0.0


class TestDeathPrediction:
    def test_zero_current_never_dies(self, cell):
        assert cell.time_to_death(0.0) == float("inf")

    def test_dead_cell_reports_zero(self, cell):
        ttd = cell.time_to_death(300.0)
        cell.draw(300.0, ttd)
        assert cell.time_to_death(10.0) == 0.0
        assert cell.is_dead

    def test_prediction_is_exact(self, cell):
        ttd = cell.time_to_death(150.0)
        y1, _ = cell.preview(150.0, ttd)
        assert y1 == pytest.approx(0.0, abs=1e-3)

    def test_monotone_in_current(self, cell):
        t_low = cell.time_to_death(50.0)
        t_high = cell.time_to_death(100.0)
        assert t_high < t_low

    def test_lower_bound_is_lower(self, cell):
        for current in (20.0, 80.0, 300.0):
            assert cell.time_to_death_lower_bound(current) <= cell.time_to_death(
                current
            ) * (1 + 1e-12)

    def test_lower_bound_zero_current(self, cell):
        assert cell.time_to_death_lower_bound(0.0) == float("inf")

    def test_negative_current_rejected(self, cell):
        with pytest.raises(BatteryError):
            cell.time_to_death(-1.0)
        with pytest.raises(BatteryError):
            cell.draw(-1.0, 1.0)

    def test_overdraw_rejected(self, cell):
        ttd = cell.time_to_death(300.0)
        with pytest.raises(BatteryError):
            cell.draw(300.0, ttd * 2)


class TestSmallStepStability:
    def test_tiny_steps_stable(self, cell):
        """The series branch for k'*dt << 1 must agree with the exp branch."""
        a, b = KiBaM(PARAMS), KiBaM(PARAMS)
        a.draw(100.0, 1e-4)  # series path
        n1, n2 = b.preview(100.0, 1e-4)
        assert a.available_mas == pytest.approx(n1, rel=1e-9)
        # and charge is conserved even at this scale
        assert a.available_mas + a.bound_mas == pytest.approx(
            mah_to_mas(100.0) - 100.0 * 1e-4, rel=1e-12
        )


class TestPreviewAndReset:
    def test_preview_does_not_mutate(self, cell):
        y1, y2 = cell.available_mas, cell.bound_mas
        cell.preview(100.0, 500.0)
        assert (cell.available_mas, cell.bound_mas) == (y1, y2)

    def test_reset_restores_full(self, cell):
        cell.draw(100.0, 1000.0)
        cell.reset()
        assert cell.charge_fraction() == pytest.approx(1.0)
        assert cell.delivered_mah == 0.0


class TestPaperParameters:
    def test_stored_parameters_valid(self):
        cell = KiBaM(PAPER_KIBAM_PARAMETERS)
        # Continuous full-speed compute (130 mA) must last ~3.4 h.
        assert cell.time_to_death(130.0) / 3600.0 == pytest.approx(3.4, abs=0.1)


class TestFastPath:
    """The fused draw() and advance_cycles() against reference stepping."""

    CYCLE = [(130.0, 1.1), (45.0, 1.2), (30.0, 0.7)]

    def test_draw_bit_identical_to_step(self):
        cell = KiBaM(PARAMS)
        steps = 0
        while True:
            done = False
            for current, dt in self.CYCLE:
                if cell.time_to_death_lower_bound(current) <= dt * 3:
                    done = True
                    break
                expected = cell.preview(current, dt)
                cell.draw(current, dt)
                assert (cell.available_mas, cell.bound_mas) == expected
                steps += 1
            if done:
                break
        assert steps > 100  # the loop actually exercised the fast path

    def test_delivered_mah_matches_reference_full_discharge(self):
        from repro.hw.battery.base import Battery

        def discharge(cell, step):
            """Run the duty cycle to death, truncating the last segment."""
            while not cell.is_dead:
                for current, dt in self.CYCLE:
                    ttd = cell.time_to_death(current)
                    step(cell, current, min(dt, ttd))
                    if cell.is_dead:
                        return

        fast = KiBaM(PARAMS)
        discharge(fast, KiBaM.draw)        # fused fast path
        ref = KiBaM(PARAMS)
        discharge(ref, Battery.draw)       # generic reference path
        assert ref.delivered_mah > 0
        rel = abs(fast.delivered_mah - ref.delivered_mah) / ref.delivered_mah
        assert rel < 1e-3  # acceptance: < 0.1 % over a full discharge

    def test_advance_cycles_matches_sequential_draws(self):
        jumped = KiBaM(PARAMS)
        walked = KiBaM(PARAMS)
        n = 200
        jumped.advance_cycles(self.CYCLE, n)
        for _ in range(n):
            for current, dt in self.CYCLE:
                walked.draw(current, dt)
        assert jumped.available_mas == pytest.approx(walked.available_mas, rel=1e-9)
        assert jumped.bound_mas == pytest.approx(walked.bound_mas, rel=1e-9)
        assert jumped.delivered_mah == pytest.approx(walked.delivered_mah, rel=1e-12)

    def test_advance_cycles_rejects_unsafe_jump(self):
        cell = KiBaM(PARAMS)
        drain = sum(i * dt for i, dt in self.CYCLE)
        too_many = int(cell.available_mas / drain) + 1
        with pytest.raises(BatteryError):
            cell.advance_cycles(self.CYCLE, too_many)

    def test_advance_cycles_rejects_negative_and_dead(self):
        cell = KiBaM(PARAMS)
        with pytest.raises(BatteryError):
            cell.advance_cycles(self.CYCLE, -1)
        cell.draw(1000.0, cell.time_to_death(1000.0))  # kill it
        assert cell.is_dead
        with pytest.raises(BatteryError):
            cell.advance_cycles(self.CYCLE, 1)

    def test_advance_zero_cycles_noop(self):
        cell = KiBaM(PARAMS)
        before = (cell.available_mas, cell.bound_mas, cell.delivered_mah)
        cell.advance_cycles(self.CYCLE, 0)
        cell.advance_cycles([], 5)
        assert (cell.available_mas, cell.bound_mas, cell.delivered_mah) == before

    def test_cycle_map_drain_and_conservation(self):
        cell = KiBaM(PARAMS)
        (a11, a12, a21, a22, _, _), drain = cell.cycle_map(self.CYCLE)
        assert drain == pytest.approx(sum(i * dt for i, dt in self.CYCLE))
        # Charge conservation: with zero current the map's columns sum
        # to 1 (whatever leaves one well enters the other).
        (z11, z12, z21, z22, zb1, zb2), zdrain = cell.cycle_map(
            [(0.0, dt) for _, dt in self.CYCLE]
        )
        assert zdrain == 0.0
        assert zb1 == zb2 == 0.0
        assert z11 + z21 == pytest.approx(1.0)
        assert z12 + z22 == pytest.approx(1.0)

    def test_cycle_map_rejects_negative(self):
        cell = KiBaM(PARAMS)
        with pytest.raises(BatteryError):
            cell.cycle_map([(-1.0, 1.0)])

    def test_factor_cache_bounded(self):
        cell = KiBaM(PARAMS)
        for i in range(KiBaM._FACTOR_CACHE_MAX + 10):
            cell._dt_factors(1.0 + i * 1e-7)
        assert len(cell._factors) <= KiBaM._FACTOR_CACHE_MAX
