"""Host hub topology."""

import pytest

from repro.errors import LinkError
from repro.hw.host import HOST_NAME, HostHub


class TestTopology:
    def test_link_is_symmetric_and_cached(self, sim):
        hub = HostHub(sim, ["n1", "n2"])
        assert hub.link("n1", "n2") is hub.link("n2", "n1")

    def test_host_links_distinct_per_node(self, sim):
        hub = HostHub(sim, ["n1", "n2"])
        assert hub.host_link("n1") is not hub.host_link("n2")

    def test_full_mesh_reachable(self, sim):
        hub = HostHub(sim, ["n1", "n2", "n3"])
        for a in ["n1", "n2", "n3", HOST_NAME]:
            for b in ["n1", "n2", "n3", HOST_NAME]:
                if a != b:
                    assert hub.link(a, b) is not None

    def test_all_links_lists_created(self, sim):
        hub = HostHub(sim, ["n1", "n2"])
        hub.host_link("n1")
        hub.link("n1", "n2")
        assert len(hub.all_links()) == 2

    def test_self_link_rejected(self, sim):
        hub = HostHub(sim, ["n1"])
        with pytest.raises(LinkError):
            hub.link("n1", "n1")

    def test_unknown_actor_rejected(self, sim):
        hub = HostHub(sim, ["n1"])
        with pytest.raises(LinkError):
            hub.link("n1", "ghost")


class TestValidation:
    def test_empty_node_list_rejected(self, sim):
        with pytest.raises(LinkError):
            HostHub(sim, [])

    def test_duplicate_names_rejected(self, sim):
        with pytest.raises(LinkError):
            HostHub(sim, ["a", "a"])

    def test_host_name_reserved(self, sim):
        with pytest.raises(LinkError):
            HostHub(sim, [HOST_NAME])


class TestStoreAndForward:
    def test_internode_timing_doubled(self, sim):
        hub = HostHub(sim, ["n1", "n2"], store_and_forward=True)
        inter = hub.link("n1", "n2")
        direct = hub.host_link("n1")
        # Two serial hops: double startup, half bandwidth.
        assert inter.timing.startup_s == pytest.approx(2 * direct.timing.startup_s)
        assert inter.timing.bandwidth_bps == pytest.approx(
            direct.timing.bandwidth_bps / 2
        )

    def test_host_links_unaffected(self, sim):
        hub = HostHub(sim, ["n1", "n2"], store_and_forward=True)
        assert hub.host_link("n1").timing.startup_s == pytest.approx(0.09)

    def test_cut_through_default(self, sim):
        hub = HostHub(sim, ["n1", "n2"])
        assert hub.link("n1", "n2").timing is hub.timing


class TestAccounting:
    def test_total_bytes_moved(self, sim):
        hub = HostHub(sim, ["n1", "n2"])
        link = hub.link("n1", "n2")

        def sender(sim, link):
            tr = yield link.offer_send("m", 1234, frm="n1")
            yield tr.done

        def receiver(sim, link):
            tr = yield link.offer_recv(to="n2")
            yield tr.done

        sim.process(sender(sim, link))
        sim.process(receiver(sim, link))
        sim.run()
        assert hub.total_bytes_moved() == 1234
