"""Linear battery baseline."""

import pytest

from repro.errors import BatteryError
from repro.hw.battery import LinearBattery
from repro.units import mah_to_mas


class TestLinearBattery:
    def test_lifetime_is_charge_over_current(self):
        cell = LinearBattery(100.0)
        assert cell.time_to_death(50.0) == pytest.approx(mah_to_mas(100.0) / 50.0)

    def test_no_rate_capacity_effect(self):
        slow, fast = LinearBattery(100.0), LinearBattery(100.0)
        assert 20.0 * slow.time_to_death(20.0) == pytest.approx(
            200.0 * fast.time_to_death(200.0)
        )

    def test_no_recovery_effect(self):
        cell = LinearBattery(100.0)
        cell.draw(100.0, 600.0)
        before = cell.remaining_mas
        cell.draw(0.0, 3600.0)
        assert cell.remaining_mas == before

    def test_draw_decrements(self):
        cell = LinearBattery(1.0)
        cell.draw(1.0, 1800.0)
        assert cell.charge_fraction() == pytest.approx(0.5)

    def test_death_exact(self):
        cell = LinearBattery(1.0)
        cell.draw(1.0, 3600.0)
        assert cell.is_dead
        assert cell.time_to_death(1.0) == 0.0

    def test_overdraw_rejected(self):
        cell = LinearBattery(1.0)
        with pytest.raises(BatteryError):
            cell.draw(1.0, 7200.0)

    def test_zero_current_never_dies(self):
        assert LinearBattery(1.0).time_to_death(0.0) == float("inf")

    def test_reset(self):
        cell = LinearBattery(1.0)
        cell.draw(1.0, 1800.0)
        cell.reset()
        assert cell.charge_fraction() == 1.0

    def test_capacity_validation(self):
        with pytest.raises(BatteryError):
            LinearBattery(0.0)

    def test_delivered_accounting(self):
        cell = LinearBattery(10.0)
        cell.draw(5.0, 3600.0)
        assert cell.delivered_mah == pytest.approx(5.0)
