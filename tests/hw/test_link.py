"""Serial link: timing and rendezvous semantics."""

import pytest

from repro.errors import LinkError
from repro.hw.link import (
    PAPER_LINK_TIMING,
    PAPER_LINK_TIMING_JITTERED,
    SerialLink,
    TransactionTiming,
)
from repro.sim import RngStreams


class TestTransactionTiming:
    @pytest.mark.parametrize(
        "kb,expected",
        [(10.1, 1.1), (0.6, 0.15), (7.5, 0.84), (0.1, 0.1)],
    )
    def test_fig6_delays(self, kb, expected):
        """Fig. 6's transfer delays, to the paper's rounding."""
        assert PAPER_LINK_TIMING.duration(int(kb * 1000)) == pytest.approx(
            expected, abs=0.015
        )

    def test_baseline_comm_budget_exact(self):
        """RECV(10.1 KB) + SEND(0.1 KB) must equal the paper's 1.2 s."""
        total = PAPER_LINK_TIMING.duration(10_100) + PAPER_LINK_TIMING.duration(100)
        assert total == pytest.approx(1.2)

    def test_startup_within_paper_range(self):
        assert 0.05 <= PAPER_LINK_TIMING.startup_s <= 0.10

    def test_zero_payload_costs_startup(self):
        assert PAPER_LINK_TIMING.duration(0) == pytest.approx(
            PAPER_LINK_TIMING.startup_s
        )

    def test_jittered_needs_rng(self):
        with pytest.raises(LinkError):
            PAPER_LINK_TIMING_JITTERED.duration(100)

    def test_jitter_within_bounds(self):
        rng = RngStreams(0).stream("startup")
        for _ in range(100):
            d = PAPER_LINK_TIMING_JITTERED.duration(0, rng)
            assert 0.05 <= d <= 0.10

    def test_validation(self):
        with pytest.raises(LinkError):
            TransactionTiming(bandwidth_bps=0)
        with pytest.raises(LinkError):
            TransactionTiming(startup_s=-1.0)
        with pytest.raises(LinkError):
            TransactionTiming(startup_s=0.01, startup_jitter_s=0.02)
        with pytest.raises(LinkError):
            TransactionTiming(corruption_prob=1.0)
        with pytest.raises(LinkError):
            PAPER_LINK_TIMING.duration(-5)


class TestCorruption:
    def test_corruption_needs_rng(self):
        timing = TransactionTiming(corruption_prob=0.1)
        with pytest.raises(LinkError):
            timing.duration(100)

    def test_durations_are_attempt_multiples(self):
        timing = TransactionTiming(corruption_prob=0.4)
        rng = RngStreams(0).stream("x")
        attempt = timing.startup_s + 100 * 8 / 80_000
        for _ in range(100):
            d = timing.duration(100, rng)
            assert d / attempt == pytest.approx(round(d / attempt))
            assert d >= attempt

    def test_expected_duration_includes_retries(self):
        clean = TransactionTiming()
        noisy = TransactionTiming(corruption_prob=0.2)
        assert noisy.nominal_duration(1000) == pytest.approx(
            clean.nominal_duration(1000) / 0.8
        )

    def test_mean_matches_expectation(self):
        timing = TransactionTiming(corruption_prob=0.3)
        rng = RngStreams(1).stream("x")
        samples = [timing.duration(1000, rng) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(timing.nominal_duration(1000), rel=0.05)

    def test_zero_probability_is_deterministic(self):
        timing = TransactionTiming(corruption_prob=0.0)
        assert timing.duration(1000) == timing.nominal_duration(1000)


class TestRendezvous:
    def test_sender_first(self, sim):
        link = SerialLink(sim, "a", "b")
        log = {}

        def sender(sim, link):
            tr = yield link.offer_send("msg", 800, frm="a")
            log["send_start"] = sim.now
            yield tr.done
            log["send_end"] = sim.now

        def receiver(sim, link):
            yield sim.timeout(1.0)
            tr = yield link.offer_recv(to="b")
            log["recv_start"] = sim.now
            yield tr.done
            log["msg"] = tr.message

        sim.process(sender(sim, link))
        sim.process(receiver(sim, link))
        sim.run()
        assert log["send_start"] == log["recv_start"] == 1.0
        assert log["send_end"] == pytest.approx(1.0 + 0.09 + 800 * 8 / 80_000)
        assert log["msg"] == "msg"

    def test_receiver_first(self, sim):
        link = SerialLink(sim, "a", "b")
        started = []

        def receiver(sim, link):
            tr = yield link.offer_recv(to="b")
            started.append(sim.now)
            yield tr.done

        def sender(sim, link):
            yield sim.timeout(2.5)
            tr = yield link.offer_send("m", 0, frm="a")
            yield tr.done

        sim.process(receiver(sim, link))
        sim.process(sender(sim, link))
        sim.run()
        assert started == [2.5]

    def test_fifo_matching(self, sim):
        link = SerialLink(sim, "a", "b")
        got = []

        def sender(sim, link):
            for i in range(3):
                tr = yield link.offer_send(i, 0, frm="a")
                yield tr.done

        def receiver(sim, link):
            for _ in range(3):
                tr = yield link.offer_recv(to="b")
                yield tr.done
                got.append(tr.message)

        sim.process(sender(sim, link))
        sim.process(receiver(sim, link))
        sim.run()
        assert got == [0, 1, 2]

    def test_full_duplex_directions_independent(self, sim):
        link = SerialLink(sim, "a", "b")
        log = []

        def forward(sim, link):
            tr = yield link.offer_send("data", 8000, frm="a")
            yield tr.done
            log.append(("fwd", sim.now))

        def fwd_recv(sim, link):
            tr = yield link.offer_recv(to="b")
            yield tr.done

        def backward(sim, link):
            tr = yield link.offer_send("ack", 0, frm="b")
            yield tr.done
            log.append(("bwd", sim.now))

        def bwd_recv(sim, link):
            tr = yield link.offer_recv(to="a")
            yield tr.done

        for proc in (forward, fwd_recv, backward, bwd_recv):
            sim.process(proc(sim, link))
        sim.run()
        # The 0-byte ack is not queued behind the 8 KB data transfer.
        times = dict(log)
        assert times["bwd"] < times["fwd"]

    def test_cancel_pending_offer(self, sim):
        link = SerialLink(sim, "a", "b")
        grant = link.offer_send("m", 100, frm="a")
        assert link.cancel(grant)
        matched = []

        def receiver(sim, link):
            tr = yield link.offer_recv(to="b")
            matched.append(tr)

        sim.process(receiver(sim, link))
        sim.run()
        assert matched == []  # cancelled send never matches

    def test_cancel_matched_offer_returns_false(self, sim):
        link = SerialLink(sim, "a", "b")
        grant = link.offer_send("m", 100, frm="a")
        link.offer_recv(to="b")
        sim.run()
        assert not link.cancel(grant)

    def test_diagnostics_counters(self, sim):
        link = SerialLink(sim, "a", "b")

        def sender(sim, link):
            tr = yield link.offer_send("m", 700, frm="a")
            yield tr.done

        def receiver(sim, link):
            tr = yield link.offer_recv(to="b")
            yield tr.done

        sim.process(sender(sim, link))
        sim.process(receiver(sim, link))
        sim.run()
        assert link.transfer_count["a"] == 1
        assert link.bytes_moved["a"] == 700
        assert link.transfer_count["b"] == 0

    def test_endpoint_validation(self, sim):
        link = SerialLink(sim, "a", "b")
        with pytest.raises(LinkError):
            link.offer_send("m", 0, frm="c")
        with pytest.raises(LinkError):
            link.offer_recv(to="nope")
        with pytest.raises(LinkError):
            SerialLink(sim, "a", "a")

    def test_peer_of(self, sim):
        link = SerialLink(sim, "a", "b")
        assert link.peer_of("a") == "b"
        assert link.peer_of("b") == "a"

    def test_pending_sends_counter(self, sim):
        link = SerialLink(sim, "a", "b")
        link.offer_send("m", 0, frm="a")
        assert link.pending_sends("a") == 1
