"""SA-1100 DVS table and scaling laws."""

import pytest

from repro.errors import ConfigurationError, InfeasiblePartitionError
from repro.hw.dvs import SA1100_TABLE, DVSTable, FrequencyLevel


class TestPaperTable:
    def test_eleven_levels(self):
        assert len(SA1100_TABLE) == 11

    def test_range_matches_paper(self):
        assert SA1100_TABLE.min.mhz == 59.0
        assert SA1100_TABLE.max.mhz == 206.4

    def test_fig7_voltages(self):
        # Spot-check the voltage row of Fig. 7.
        assert SA1100_TABLE.level_at(59.0).volts == 0.919
        assert SA1100_TABLE.level_at(103.2).volts == 1.067
        assert SA1100_TABLE.level_at(206.4).volts == 1.393

    def test_frequencies_strictly_increasing(self):
        freqs = [lv.mhz for lv in SA1100_TABLE]
        assert freqs == sorted(freqs)
        assert len(set(freqs)) == len(freqs)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            DVSTable([])

    def test_unsorted_rejected(self):
        with pytest.raises(ConfigurationError):
            DVSTable([FrequencyLevel(100, 1.0), FrequencyLevel(50, 0.9)])

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            DVSTable([FrequencyLevel(100, 1.0), FrequencyLevel(100, 1.1)])

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            DVSTable([FrequencyLevel(0.0, 1.0)])


class TestLookups:
    def test_level_at_exact(self):
        assert SA1100_TABLE.level_at(132.7).mhz == 132.7

    def test_level_at_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            SA1100_TABLE.level_at(100.0)

    def test_ceil_rounds_up(self):
        assert SA1100_TABLE.ceil(95.0).mhz == 103.2

    def test_ceil_exact_match(self):
        assert SA1100_TABLE.ceil(103.2).mhz == 103.2

    def test_ceil_below_min_clamps(self):
        # The paper's Node1 requirement (~32 MHz) rounds up to 59.
        assert SA1100_TABLE.ceil(32.0).mhz == 59.0

    def test_ceil_above_max_infeasible(self):
        # The paper's scheme 3: ~380 MHz required.
        with pytest.raises(InfeasiblePartitionError) as err:
            SA1100_TABLE.ceil(380.0)
        assert err.value.required_mhz == 380.0

    def test_floor_rounds_down(self):
        assert SA1100_TABLE.floor(95.0).mhz == 88.5

    def test_floor_below_min_clamps(self):
        assert SA1100_TABLE.floor(10.0).mhz == 59.0

    def test_step_up_down(self):
        lv = SA1100_TABLE.level_at(103.2)
        assert SA1100_TABLE.step_up(lv).mhz == 118.0
        assert SA1100_TABLE.step_down(lv).mhz == 88.5

    def test_step_clamps_at_ends(self):
        assert SA1100_TABLE.step_up(SA1100_TABLE.max).mhz == 206.4
        assert SA1100_TABLE.step_down(SA1100_TABLE.min).mhz == 59.0


class TestScalingLaws:
    def test_linear_time_scaling(self):
        # §4.3: performance degrades linearly with clock rate.
        half = SA1100_TABLE.level_at(103.2)
        assert SA1100_TABLE.scale_time(1.1, half) == pytest.approx(2.2)

    def test_scale_at_max_is_identity(self):
        assert SA1100_TABLE.scale_time(1.1, SA1100_TABLE.max) == pytest.approx(1.1)

    def test_required_mhz_inverse_of_scale(self):
        req = SA1100_TABLE.required_mhz(1.1, 2.2)
        assert req == pytest.approx(103.2)

    def test_required_mhz_zero_work(self):
        assert SA1100_TABLE.required_mhz(0.0, 0.5) == 0.0

    def test_required_mhz_no_budget(self):
        assert SA1100_TABLE.required_mhz(1.0, 0.0) == float("inf")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            SA1100_TABLE.scale_time(-1.0, SA1100_TABLE.max)


class TestSwitchingActivity:
    def test_quadratic_in_voltage(self):
        lv = FrequencyLevel(100.0, 2.0)
        assert lv.switching_activity == pytest.approx(400.0)

    def test_ordering_by_performance(self):
        assert FrequencyLevel(59.0, 0.919) < FrequencyLevel(73.7, 0.978)


class TestSubsampled:
    def test_keeps_endpoints(self):
        for step in (2, 3, 5, 10):
            table = SA1100_TABLE.subsampled(step)
            assert table.min.mhz == 59.0
            assert table.max.mhz == 206.4

    def test_step_one_is_identity(self):
        assert len(SA1100_TABLE.subsampled(1)) == len(SA1100_TABLE)

    def test_counts(self):
        assert len(SA1100_TABLE.subsampled(2)) == 6   # indices 0,2,...,10
        assert len(SA1100_TABLE.subsampled(5)) == 3
        assert len(SA1100_TABLE.subsampled(100)) == 2

    def test_invalid_step(self):
        with pytest.raises(ConfigurationError):
            SA1100_TABLE.subsampled(0)

    def test_levels_are_subset(self):
        sub = SA1100_TABLE.subsampled(3)
        assert set(sub.levels) <= set(SA1100_TABLE.levels)
