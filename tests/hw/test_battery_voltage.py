"""Voltage-sag / constant-power battery wrapper."""

import pytest

from repro.errors import BatteryError
from repro.hw.battery import KiBaM, KiBaMParameters, LinearBattery
from repro.hw.battery.voltage import LIION_OCV, OcvCurve, VoltageAwareBattery


PARAMS = KiBaMParameters(300.0, c=0.3, k_prime_per_hour=1.0)


def wrapped(**kwargs):
    return VoltageAwareBattery(KiBaM(PARAMS), **kwargs)


class TestOcvCurve:
    def test_interpolation(self):
        curve = OcvCurve([(0.0, 3.0), (1.0, 4.0)])
        assert curve.volts(0.5) == pytest.approx(3.5)
        assert curve.volts(0.0) == 3.0
        assert curve.volts(1.0) == 4.0

    def test_clamping(self):
        curve = OcvCurve([(0.0, 3.0), (1.0, 4.0)])
        assert curve.volts(-0.2) == 3.0
        assert curve.volts(1.7) == 4.0

    def test_liion_shape(self):
        assert LIION_OCV.volts(1.0) > LIION_OCV.volts(0.5) > LIION_OCV.min_volts

    @pytest.mark.parametrize(
        "points",
        [
            [(0.0, 3.0)],                       # too few
            [(0.1, 3.0), (1.0, 4.0)],           # doesn't cover 0
            [(0.0, 3.0), (0.5, 2.0), (1.0, 4.0)],  # non-monotone volts
            [(0.0, -1.0), (1.0, 4.0)],          # non-positive volts
        ],
    )
    def test_invalid_curves(self, points):
        with pytest.raises(BatteryError):
            OcvCurve(points)


class TestVoltageAwareBattery:
    def test_sag_shortens_lifetime(self):
        plain = KiBaM(PARAMS)
        assert wrapped().time_to_death(100.0) < plain.time_to_death(100.0)

    def test_ideal_regulator_at_nominal_voltage_is_transparent(self):
        flat = OcvCurve([(0.0, 4.0), (1.0, 4.0)])
        ideal = VoltageAwareBattery(
            KiBaM(PARAMS), ocv=flat, nominal_volts=4.0, efficiency=1.0
        )
        plain = KiBaM(PARAMS)
        assert ideal.time_to_death(100.0) == pytest.approx(
            plain.time_to_death(100.0), rel=1e-6
        )

    def test_lower_efficiency_costs_more(self):
        good = wrapped(efficiency=0.95)
        bad = wrapped(efficiency=0.75)
        assert bad.time_to_death(100.0) < good.time_to_death(100.0)

    def test_draw_to_predicted_death_is_safe(self):
        cell = wrapped()
        ttd = cell.time_to_death(120.0)
        cell.draw(120.0, ttd)  # must not raise
        assert cell.is_dead

    def test_cell_delivers_more_than_load(self):
        cell = wrapped()
        cell.draw(100.0, 1800.0)
        assert cell.cell_delivered_mah > cell.delivered_mah

    def test_lower_bound_holds(self):
        cell = wrapped()
        for current in (20.0, 100.0, 250.0):
            assert cell.time_to_death_lower_bound(current) <= cell.time_to_death(
                current
            ) * (1 + 1e-9)

    def test_scale_grows_as_pack_drains(self):
        cell = wrapped()
        early = cell._scale(cell.inner)
        cell.draw(100.0, 3600.0)
        late = cell._scale(cell.inner)
        assert late > early > 1.0

    def test_wraps_any_model(self):
        linear = VoltageAwareBattery(LinearBattery(300.0))
        plain = LinearBattery(300.0)
        assert linear.time_to_death(100.0) < plain.time_to_death(100.0)

    def test_reset(self):
        cell = wrapped()
        cell.draw(100.0, 600.0)
        cell.reset()
        assert cell.charge_fraction() == pytest.approx(1.0)
        assert cell.delivered_mah == 0.0

    def test_validation(self):
        with pytest.raises(BatteryError):
            wrapped(efficiency=0.0)
        with pytest.raises(BatteryError):
            wrapped(efficiency=1.2)
        with pytest.raises(BatteryError):
            wrapped(substep_s=0.0)

    def test_zero_current_never_dies(self):
        assert wrapped().time_to_death(0.0) == float("inf")

    def test_node_integration(self):
        from repro.hw import ItsyNode, SA1100_TABLE
        from repro.hw.power import PAPER_POWER_MODEL
        from repro.sim import Simulator

        sim = Simulator()
        cell = VoltageAwareBattery(
            KiBaM(KiBaMParameters(10.0, c=0.3, k_prime_per_hour=1.0))
        )
        node = ItsyNode(sim, "n", cell, PAPER_POWER_MODEL, SA1100_TABLE)

        def forever(node):
            while True:
                yield from node.compute(1.0, SA1100_TABLE.max)
                yield from node.idle_for(0.5)

        node.spawn(forever(node))
        sim.run()
        assert node.is_dead
