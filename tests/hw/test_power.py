"""Fig. 7 power model."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.dvs import SA1100_TABLE
from repro.hw.power import (
    PAPER_POWER_MODEL,
    CurrentCurve,
    PowerMode,
    PowerModel,
)

LO = SA1100_TABLE.level_at(59.0)
MID = SA1100_TABLE.level_at(103.2)
HI = SA1100_TABLE.level_at(206.4)


class TestCurrentCurve:
    def test_through_hits_anchors(self):
        curve = CurrentCurve.through((LO, 40.0), (HI, 110.0))
        assert curve.current_ma(LO) == pytest.approx(40.0)
        assert curve.current_ma(HI) == pytest.approx(110.0)

    def test_monotone_in_activity(self):
        curve = CurrentCurve.through((LO, 40.0), (HI, 110.0))
        currents = [curve.current_ma(lv) for lv in SA1100_TABLE]
        assert currents == sorted(currents)

    def test_identical_anchors_rejected(self):
        with pytest.raises(ConfigurationError):
            CurrentCurve.through((LO, 40.0), (LO, 50.0))


class TestPaperAnchors:
    """Every current the paper quotes must come out of the model."""

    def test_comm_40ma_at_59(self):
        assert PAPER_POWER_MODEL.peak_current_ma(
            PowerMode.COMMUNICATION, LO
        ) == pytest.approx(40.0)

    def test_comm_110ma_at_206(self):
        assert PAPER_POWER_MODEL.peak_current_ma(
            PowerMode.COMMUNICATION, HI
        ) == pytest.approx(110.0)

    def test_comm_55ma_at_103(self):
        # §6.5 quotes ~55 mA; the f*V^2 interpolation gives 53.5.
        assert PAPER_POWER_MODEL.peak_current_ma(
            PowerMode.COMMUNICATION, MID
        ) == pytest.approx(55.0, abs=2.0)

    def test_comp_130ma_at_206(self):
        assert PAPER_POWER_MODEL.peak_current_ma(
            PowerMode.COMPUTATION, HI
        ) == pytest.approx(130.0)

    def test_idle_30ma_at_59(self):
        assert PAPER_POWER_MODEL.peak_current_ma(
            PowerMode.IDLE, LO
        ) == pytest.approx(30.0)

    def test_curves_span_quoted_range(self):
        # §4.4: "the three curves range from 30 mA to 130 mA".
        rows = PAPER_POWER_MODEL.figure7_rows()
        lows = min(r["idle_ma"] for r in rows)
        highs = max(r["computation_ma"] for r in rows)
        assert lows == pytest.approx(30.0, abs=0.5)
        assert highs == pytest.approx(130.0, abs=0.5)

    def test_computation_dominates_everywhere(self):
        # §4.4: "the computation always dominates the power consumption".
        for row in PAPER_POWER_MODEL.figure7_rows():
            assert row["computation_ma"] > row["communication_ma"] > row["idle_ma"]


class TestEffectiveIOCurrent:
    def test_between_idle_and_peak(self):
        for lv in SA1100_TABLE:
            idle = PAPER_POWER_MODEL.current_ma(PowerMode.IDLE, lv)
            eff = PAPER_POWER_MODEL.current_ma(PowerMode.COMMUNICATION, lv)
            peak = PAPER_POWER_MODEL.peak_current_ma(PowerMode.COMMUNICATION, lv)
            assert idle <= eff <= peak

    def test_io_activity_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            PAPER_POWER_MODEL.replace(io_activity=1.5)

    def test_activity_one_is_peak(self):
        pm = PAPER_POWER_MODEL.replace(io_activity=1.0)
        assert pm.current_ma(PowerMode.COMMUNICATION, HI) == pytest.approx(
            pm.peak_current_ma(PowerMode.COMMUNICATION, HI)
        )

    def test_activity_zero_is_idle(self):
        pm = PAPER_POWER_MODEL.replace(io_activity=0.0)
        assert pm.current_ma(PowerMode.COMMUNICATION, HI) == pytest.approx(
            pm.current_ma(PowerMode.IDLE, HI)
        )


class TestDeadMode:
    def test_dead_draws_nothing(self):
        assert PAPER_POWER_MODEL.current_ma(PowerMode.DEAD, HI) == 0.0
        assert PAPER_POWER_MODEL.peak_current_ma(PowerMode.DEAD, HI) == 0.0


class TestFigure7Rows:
    def test_one_row_per_level(self):
        assert len(PAPER_POWER_MODEL.figure7_rows()) == len(SA1100_TABLE)

    def test_rows_carry_voltages(self):
        rows = PAPER_POWER_MODEL.figure7_rows()
        assert rows[0]["volts"] == 0.919
        assert rows[-1]["volts"] == 1.393

    def test_replace_keeps_others(self):
        pm = PAPER_POWER_MODEL.replace(io_activity=0.5)
        assert pm.io_activity == 0.5
        assert pm.peak_current_ma(PowerMode.COMPUTATION, HI) == pytest.approx(130.0)
