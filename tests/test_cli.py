"""CLI behaviour (invoked in-process via main())."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for cmd in (
            "run", "suite", "figures", "partition", "trace", "calibrate", "profile",
        ):
            args = parser.parse_args(
                [cmd] + (["fig7"] if cmd == "figures" else [])
                + (["1"] if cmd == "trace" else [])
            )
            assert args.command == cmd


class TestFigures:
    @pytest.mark.parametrize("figure", ["fig6", "fig7", "fig8"])
    def test_static_figures_render(self, figure, capsys):
        assert main(["figures", figure]) == 0
        out = capsys.readouterr().out
        assert "Fig." in out

    def test_export_csv(self, tmp_path, capsys):
        target = tmp_path / "fig7.csv"
        assert main(["figures", "fig7", "--export", str(target)]) == 0
        assert target.read_text().startswith("freq_mhz")


class TestPartition:
    def test_default_analysis(self, capsys):
        assert main(["partition"]) == 0
        out = capsys.readouterr().out
        assert "selected (energy criterion)" in out
        assert "target_detection" in out

    def test_infeasible_deadline_reported(self, capsys):
        assert main(["partition", "--deadline", "1.3"]) == 0
        assert "no feasible scheme" in capsys.readouterr().out

    def test_bandwidth_option(self, capsys):
        assert main(["partition", "--bandwidth-kbps", "1000"]) == 0
        assert "1000 Kbps" in capsys.readouterr().out


class TestTrace:
    def test_renders_gantt(self, capsys):
        assert main(["trace", "2", "--frames", "4", "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "node1" in out and "node2" in out
        assert "P=proc" in out

    def test_unknown_label(self, capsys):
        assert main(["trace", "9Z"]) == 2

    def test_no_io_experiment_rejected(self, capsys):
        assert main(["trace", "0A"]) == 2


class TestTraceExport:
    def test_chrome_export_is_valid_with_node_tracks(self, tmp_path, capsys):
        import json

        from tests.obs.chrome_schema import expect_tracks, validate_chrome_trace

        out = tmp_path / "trace.json"
        code = main(["trace", "2", "--frames", "4",
                     "--export", "chrome", "-o", str(out)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        assert expect_tracks(payload, ["node1", "node2"]) == []

    def test_jsonl_export_reloads(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        out = tmp_path / "trace.jsonl"
        assert main(["trace", "2", "--frames", "4",
                     "--export", "jsonl", "-o", str(out)]) == 0
        bundle = read_jsonl(out)
        assert bundle.segments and bundle.events
        assert bundle.metrics is not None

    def test_csv_export(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        assert main(["trace", "2", "--frames", "4",
                     "--export", "csv", "-o", str(out)]) == 0
        assert out.read_text().startswith("actor")


class TestMetrics:
    def test_prints_metric_tables(self, capsys):
        code = main(["metrics", "1A", "--frames", "5", "--fast", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment 1A metrics" in out
        assert "frames.completed" in out
        assert "frame.latency_s" in out

    def test_merged_table_for_multiple_labels(self, capsys):
        code = main(["metrics", "1A", "2", "--frames", "5", "--fast",
                     "--no-cache"])
        assert code == 0
        assert "all experiments (merged)" in capsys.readouterr().out

    def test_unknown_label(self, capsys):
        assert main(["metrics", "9Z"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_export_rows(self, tmp_path, capsys):
        out = tmp_path / "metrics.csv"
        assert main(["metrics", "1A", "--frames", "5", "--fast",
                     "--no-cache", "--export", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("label") and "counter" in text


class TestRun:
    def test_unknown_label_exit_code(self, capsys):
        assert main(["run", "9Z"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fast_run_prints_metrics(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        code = main(["run", "1", "--fast", "--export", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment results" in out
        assert "quarter-capacity" in out
        assert target.exists()


class TestOptimize:
    def test_ranks_design_space(self, capsys):
        assert main(["optimize", "--fast", "--stages", "2", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "design space" in out
        assert "rotation" in out

    def test_objective_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize", "--objective", "vibes"])


class TestProfile:
    def test_prints_measured_blocks(self, capsys):
        assert main(["profile", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "measured ATR profile" in out
        assert "target_detection" in out
        assert "compute_distance" in out

    def test_frames_flag(self, capsys):
        assert main(["profile", "--frames", "3", "--repeats", "1"]) == 0
        assert "3 frame(s)" in capsys.readouterr().out

    def test_export_csv(self, tmp_path, capsys):
        target = tmp_path / "profile.csv"
        assert main(
            ["profile", "--repeats", "1", "--export", str(target)]
        ) == 0
        assert target.read_text().startswith("block")

    def test_invalid_frames_is_clean_error(self, capsys):
        assert main(["profile", "--frames", "0", "--repeats", "1"]) == 1
        assert "error:" in capsys.readouterr().err


class TestCalibrate:
    def test_reports_residuals(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "fitted parameters" in out
        assert "worst |error|" in out
