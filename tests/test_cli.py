"""CLI behaviour (invoked in-process via main())."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _isolated_registry(tmp_path, monkeypatch):
    """Keep default registry writes out of the working tree."""
    monkeypatch.setenv("REPRO_RUNS_DB", str(tmp_path / "default-runs.sqlite"))


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for cmd in (
            "run", "suite", "figures", "partition", "trace", "calibrate", "profile",
        ):
            args = parser.parse_args(
                [cmd] + (["fig7"] if cmd == "figures" else [])
                + (["1"] if cmd == "trace" else [])
            )
            assert args.command == cmd


class TestFigures:
    @pytest.mark.parametrize("figure", ["fig6", "fig7", "fig8"])
    def test_static_figures_render(self, figure, capsys):
        assert main(["figures", figure]) == 0
        out = capsys.readouterr().out
        assert "Fig." in out

    def test_export_csv(self, tmp_path, capsys):
        target = tmp_path / "fig7.csv"
        assert main(["figures", "fig7", "--export", str(target)]) == 0
        assert target.read_text().startswith("freq_mhz")


class TestPartition:
    def test_default_analysis(self, capsys):
        assert main(["partition"]) == 0
        out = capsys.readouterr().out
        assert "selected (energy criterion)" in out
        assert "target_detection" in out

    def test_infeasible_deadline_reported(self, capsys):
        assert main(["partition", "--deadline", "1.3"]) == 0
        assert "no feasible scheme" in capsys.readouterr().out

    def test_bandwidth_option(self, capsys):
        assert main(["partition", "--bandwidth-kbps", "1000"]) == 0
        assert "1000 Kbps" in capsys.readouterr().out


class TestTrace:
    def test_renders_gantt(self, capsys):
        assert main(["trace", "2", "--frames", "4", "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "node1" in out and "node2" in out
        assert "P=proc" in out

    def test_unknown_label(self, capsys):
        assert main(["trace", "9Z"]) == 2

    def test_no_io_experiment_rejected(self, capsys):
        assert main(["trace", "0A"]) == 2


class TestTraceExport:
    def test_chrome_export_is_valid_with_node_tracks(self, tmp_path, capsys):
        import json

        from tests.obs.chrome_schema import expect_tracks, validate_chrome_trace

        out = tmp_path / "trace.json"
        code = main(["trace", "2", "--frames", "4",
                     "--export", "chrome", "-o", str(out)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        assert expect_tracks(payload, ["node1", "node2"]) == []

    def test_jsonl_export_reloads(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        out = tmp_path / "trace.jsonl"
        assert main(["trace", "2", "--frames", "4",
                     "--export", "jsonl", "-o", str(out)]) == 0
        bundle = read_jsonl(out)
        assert bundle.segments and bundle.events
        assert bundle.metrics is not None

    def test_csv_export(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        assert main(["trace", "2", "--frames", "4",
                     "--export", "csv", "-o", str(out)]) == 0
        assert out.read_text().startswith("actor")


class TestMetrics:
    def test_prints_metric_tables(self, capsys):
        code = main(["metrics", "1A", "--frames", "5", "--fast", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment 1A metrics" in out
        assert "frames.completed" in out
        assert "frame.latency_s" in out

    def test_merged_table_for_multiple_labels(self, capsys):
        code = main(["metrics", "1A", "2", "--frames", "5", "--fast",
                     "--no-cache"])
        assert code == 0
        assert "all experiments (merged)" in capsys.readouterr().out

    def test_unknown_label(self, capsys):
        assert main(["metrics", "9Z"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_export_rows(self, tmp_path, capsys):
        out = tmp_path / "metrics.csv"
        assert main(["metrics", "1A", "--frames", "5", "--fast",
                     "--no-cache", "--export", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("label") and "counter" in text


class TestRun:
    def test_unknown_label_exit_code(self, capsys):
        assert main(["run", "9Z"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fast_run_prints_metrics(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        code = main(["run", "1", "--fast", "--export", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment results" in out
        assert "quarter-capacity" in out
        assert target.exists()


class TestOptimize:
    def test_ranks_design_space(self, capsys):
        assert main(["optimize", "--fast", "--stages", "2", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "design space" in out
        assert "rotation" in out

    def test_objective_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize", "--objective", "vibes"])


class TestProfile:
    def test_prints_measured_blocks(self, capsys):
        assert main(["profile", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "measured ATR profile" in out
        assert "target_detection" in out
        assert "compute_distance" in out

    def test_frames_flag(self, capsys):
        assert main(["profile", "--frames", "3", "--repeats", "1"]) == 0
        assert "3 frame(s)" in capsys.readouterr().out

    def test_export_csv(self, tmp_path, capsys):
        target = tmp_path / "profile.csv"
        assert main(
            ["profile", "--repeats", "1", "--export", str(target)]
        ) == 0
        assert target.read_text().startswith("block")

    def test_invalid_frames_is_clean_error(self, capsys):
        assert main(["profile", "--frames", "0", "--repeats", "1"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRuns:
    """`repro runs list|show|diff|reset` against a seeded registry."""

    @pytest.fixture(scope="class")
    def records(self):
        from repro.core.experiments import (
            PAPER_EXPERIMENTS,
            experiment_fingerprint,
            run_experiment,
        )
        from repro.obs import build_run_record
        from tests.conftest import tiny_battery_factory

        kw = dict(
            battery_factory=tiny_battery_factory,
            max_frames=15,
            telemetry=True,
            monitor_interval_s=60.0,
        )
        out = {}
        for label in ("2", "2A"):
            run = run_experiment(PAPER_EXPERIMENTS[label], **kw)
            out[label] = build_run_record(
                run, experiment_fingerprint(PAPER_EXPERIMENTS[label], kw)
            )
        return out

    @pytest.fixture()
    def db(self, tmp_path, records):
        from repro.obs import RunRegistry

        path = tmp_path / "runs.sqlite"
        registry = RunRegistry(path)
        for record in records.values():
            registry.record(record)
        return str(path)

    def test_list_shows_registered_runs(self, db, capsys):
        assert main(["runs", "--db", db, "list"]) == 0
        out = capsys.readouterr().out
        assert "run registry" in out
        assert " 2 " in out and " 2A " in out

    def test_list_filters_by_label(self, db, capsys):
        assert main(["runs", "--db", db, "list", "--label", "2A"]) == 0
        out = capsys.readouterr().out
        assert " 2A " in out
        assert " 2 \n" not in out

    def test_list_paginates_with_limit_and_offset(self, db, capsys):
        assert main(["runs", "--db", db, "list", "--limit", "1"]) == 0
        first_page = capsys.readouterr().out
        assert main(["runs", "--db", db, "list", "--limit", "1",
                     "--offset", "1"]) == 0
        second_page = capsys.readouterr().out
        assert "runs 2..2" in second_page
        # Two seeded runs: each page shows exactly one, and they differ.
        first_ids = [ln.split()[0] for ln in first_page.splitlines()
                     if "|" in ln and "run_id" not in ln]
        second_ids = [ln.split()[0] for ln in second_page.splitlines()
                      if "|" in ln and "run_id" not in ln]
        assert len(first_ids) == 1 and len(second_ids) == 1
        assert first_ids != second_ids

    def test_list_offset_past_end_is_empty(self, db, capsys):
        assert main(["runs", "--db", db, "list", "--offset", "99"]) == 0
        assert "no registered runs" in capsys.readouterr().out

    def test_list_empty_registry(self, tmp_path, capsys):
        db = str(tmp_path / "empty.sqlite")
        assert main(["runs", "--db", db, "list"]) == 0
        assert "no registered runs" in capsys.readouterr().out

    def test_show_resolves_prefix(self, db, records, capsys):
        run_id = records["2A"].run_id
        assert main(["runs", "--db", db, "show", run_id[:10]]) == 0
        out = capsys.readouterr().out
        assert run_id in out
        assert "label    2A" in out
        assert "summary" in out

    def test_show_unknown_id_is_clean_error(self, db, capsys):
        assert main(["runs", "--db", db, "show", "feedface"]) == 1
        assert "no registered run" in capsys.readouterr().err

    def test_diff_between_policies_prints_nonzero_deltas(
        self, db, records, capsys
    ):
        a, b = records["2"].run_id, records["2A"].run_id
        assert main(["runs", "--db", db, "diff", a[:12], b[:12]]) == 0
        out = capsys.readouterr().out
        assert "counter:events.dvs.switch" in out
        assert "REGRESSION" not in out  # threshold 0: report only

    def test_diff_threshold_flags_regressions(self, db, records, capsys):
        a, b = records["2"].run_id, records["2A"].run_id
        code = main(
            ["runs", "--db", db, "diff", a[:12], b[:12], "--threshold", "0.5"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "moved more than" in out

    def test_diff_run_against_itself_is_empty(self, db, records, capsys):
        a = records["2"].run_id
        assert main(["runs", "--db", db, "diff", a, a]) == 0
        assert "no metric deltas" in capsys.readouterr().out

    def test_reset_empties_registry(self, db, capsys):
        assert main(["runs", "--db", db, "reset"]) == 0
        assert "removed 2 run(s)" in capsys.readouterr().out
        assert main(["runs", "--db", db, "list"]) == 0
        assert "no registered runs" in capsys.readouterr().out


class TestCheck:
    """`repro check` invariants, Fig. 10 ordering, and baseline diffs."""

    def test_single_label_invariants_hold(self, tmp_path, capsys):
        db = str(tmp_path / "runs.sqlite")
        code = main(["check", "2", "--fast", "--no-cache", "--db", db])
        assert code == 0
        out = capsys.readouterr().out
        assert "experiment 2 invariants" in out
        assert "all invariants held" in out
        assert "FAIL" not in out

    def test_unknown_label_rejected(self, capsys):
        assert main(["check", "7Z", "--no-registry"]) == 2
        assert "unknown experiment labels" in capsys.readouterr().err

    def test_paper_ordering_verifies_and_registers(self, tmp_path, capsys):
        db = str(tmp_path / "runs.sqlite")
        args = ["check", "--paper", "--fast", "--no-cache", "--db", db]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "running unregistered experiments" in first
        assert "Fig. 10 ordering verified: 2C > 2B > 2A > 2" in first
        # Second invocation finds all four runs already registered.
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "running unregistered experiments" not in second
        assert "Fig. 10 ordering verified" in second

    def test_baseline_regression_detected(self, tmp_path, capsys):
        from repro.core.experiments import (
            PAPER_EXPERIMENTS,
            experiment_fingerprint,
            run_experiment,
        )
        from repro.obs import RunRegistry, build_run_record
        from tests.conftest import tiny_battery_factory

        # A tiny-battery baseline: a fresh quarter-capacity run of the
        # same label must diverge far past any reasonable threshold.
        kw = dict(battery_factory=tiny_battery_factory, telemetry=True,
                  monitor_interval_s=60.0)
        run = run_experiment(PAPER_EXPERIMENTS["2"], **kw)
        record = build_run_record(
            run, experiment_fingerprint(PAPER_EXPERIMENTS["2"], kw)
        )
        db = tmp_path / "runs.sqlite"
        RunRegistry(db).record(record)
        code = main(
            ["check", "--baseline", record.run_id[:12], "--fast",
             "--no-cache", "--db", str(db)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "against the baseline" in out


class TestSweep:
    """`repro sweep`: scalar one-at-a-time and batched cohort paths."""

    def test_scalar_sweep_prints_table(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "sensitivity sweep (scalar, one-at-a-time)" in out
        assert "nominal" in out
        assert "VIOLATED" not in out

    def test_batch_sweep_with_verify(self, capsys):
        code = main(["sweep", "--batch", "--grid", "2", "--verify", "4",
                     "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "16 configs" in out
        assert "ordering holds for 16/16" in out
        assert "frames identical: True" in out
        assert "[ok]" in out

    def test_batch_sweep_export(self, tmp_path, capsys):
        target = tmp_path / "sweep.csv"
        code = main(["sweep", "--batch", "--grid", "2", "--no-cache",
                     "--export", str(target)])
        assert code == 0
        text = target.read_text()
        assert "Rnorm_rot" in text
        assert len(text.splitlines()) == 17  # header + 16 configs

    def test_batch_one_at_a_time_mode(self, capsys):
        code = main(["sweep", "--batch", "--mode", "one_at_a_time",
                     "--no-cache"])
        assert code == 0
        assert "nominal" in capsys.readouterr().out

    def test_paper_check_still_passes_after_batch_sweep(self, tmp_path, capsys):
        """Fast runs and batched sweeps coexist: the folded monitors
        still verify the Fig. 10 ordering."""
        assert main(["sweep", "--batch", "--grid", "2", "--no-cache"]) == 0
        capsys.readouterr()
        db = str(tmp_path / "runs.sqlite")
        assert main(["check", "--paper", "--fast", "--no-cache",
                     "--db", db]) == 0
        assert "Fig. 10 ordering verified" in capsys.readouterr().out


class TestCalibrate:
    def test_reports_residuals(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "fitted parameters" in out
        assert "worst |error|" in out


class TestExplore:
    def test_small_space_resolves_to_frontier(self, tmp_path, capsys):
        export = tmp_path / "frontier.json"
        code = main([
            "explore", "--bandwidth-points", "2", "--capacity-points", "1",
            "--io-points", "2", "--keep", "8", "2", "1",
            "--no-cache", "--db", str(tmp_path / "runs.sqlite"),
            "--export", str(export),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rung predict" in out
        assert "rung exact" in out
        assert "Pareto frontier" in out
        assert "pruned before any" in out
        import json

        payload = json.loads(export.read_text())
        assert payload["frontier"]
        assert [r["name"] for r in payload["rungs"]] == [
            "predict", "cohort", "fast", "exact",
        ]
        assert "wall_s" not in export.read_text()

    def test_all_infeasible_space_exits_nonzero(self, tmp_path, capsys):
        code = main([
            "explore", "--bandwidth-points", "1", "--capacity-points", "1",
            "--io-points", "1", "--deadlines", "0.2", "--keep", "4", "2", "1",
            "--no-cache", "--no-registry",
        ])
        assert code == 1
        assert "empty frontier" in capsys.readouterr().out

    def test_guided_matches_exhaustive_export(self, tmp_path, capsys):
        import json

        args = [
            "explore", "--bandwidth-points", "2", "--capacity-points", "1",
            "--io-points", "2", "--keep", "8", "2", "1",
            "--no-cache", "--no-registry",
        ]
        exhaustive = tmp_path / "exhaustive.json"
        guided = tmp_path / "guided.json"
        assert main(args + ["--export", str(exhaustive)]) == 0
        assert main(args + ["--guided", "--export", str(guided)]) == 0
        out = capsys.readouterr().out
        assert "guided sampler: probed" in out
        a = json.loads(exhaustive.read_text())
        b = json.loads(guided.read_text())
        assert json.dumps(a["frontier"], sort_keys=True) == json.dumps(
            b["frontier"], sort_keys=True
        )
        assert b["sampler"]["probed"] >= 1
        assert a["sampler"] is None

    def test_resume_latest_round_trip(self, tmp_path, capsys):
        import json

        db = str(tmp_path / "runs.sqlite")
        args = [
            "explore", "--bandwidth-points", "2", "--capacity-points", "1",
            "--io-points", "2", "--keep", "8", "2", "1", "--db", db,
            "--no-cache",
        ]
        first = tmp_path / "first.json"
        resumed = tmp_path / "resumed.json"
        assert main(args + ["--export", str(first)]) == 0
        assert main(
            args + ["--resume", "latest", "--export", str(resumed)]
        ) == 0
        assert "resuming" in capsys.readouterr().out
        assert first.read_bytes() == resumed.read_bytes()

    def test_resume_without_match_exits_two(self, tmp_path, capsys):
        code = main([
            "explore", "--bandwidth-points", "1", "--capacity-points", "1",
            "--io-points", "1", "--keep", "4", "2", "1",
            "--db", str(tmp_path / "empty.sqlite"),
            "--resume", "latest",
        ])
        assert code == 2
        assert "no resumable explore session" in capsys.readouterr().out


class TestCache:
    def test_info_empty(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        assert main(["cache", "--root", root, "info"]) == 0
        out = capsys.readouterr().out
        assert "entries  0" in out

    def test_info_and_prune_cycle(self, tmp_path, capsys):
        from repro.exec import ResultCache

        root = str(tmp_path / "cache")
        ResultCache(root, salt="old-salt").put("ab" * 32, {"v": 1})
        ResultCache(root).put("cd" * 32, {"v": 2})
        assert main(["cache", "--root", root, "info"]) == 0
        out = capsys.readouterr().out
        assert "entries  2" in out
        assert "stale" in out
        assert main(["cache", "--root", root, "prune", "--stale"]) == 0
        assert "removed 1 entry" in capsys.readouterr().out
        assert main(["cache", "--root", root, "prune", "--all"]) == 0
        assert "removed 1 entry" in capsys.readouterr().out

    def test_prune_without_criteria_errors(self, tmp_path, capsys):
        assert main(["cache", "--root", str(tmp_path), "prune"]) == 2
        assert "nothing to do" in capsys.readouterr().err


class TestRunsGc:
    def test_keep_last(self, tmp_path, capsys):
        from repro.obs import RunRegistry
        from tests.obs.test_store_gc import fake_record

        db = str(tmp_path / "runs.sqlite")
        registry = RunRegistry(db)
        for i in range(5):
            registry.record(fake_record(i))
        assert main(["runs", "--db", db, "gc", "--keep-last", "2"]) == 0
        assert "removed 3 row(s)" in capsys.readouterr().out
        assert len(registry.list_runs()) == 2

    def test_gc_without_criteria_is_clean_error(self, tmp_path, capsys):
        db = str(tmp_path / "runs.sqlite")
        assert main(["runs", "--db", db, "gc"]) == 1
        assert "gc needs" in capsys.readouterr().err
