"""ResultCache lifecycle: salt envelopes, info accounting, pruning."""

import json
import os
import time

from repro.exec import ResultCache


def entry_paths(cache: ResultCache):
    return sorted(cache.root.rglob("*.json"))


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s1")
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}

    def test_envelope_carries_salt_on_disk(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s1")
        cache.put("ab" * 32, [1, 2, 3])
        (path,) = entry_paths(cache)
        raw = json.loads(path.read_text())
        assert raw["__repro_cache__"] == 1
        assert raw["salt"] == "s1"
        assert raw["payload"] == [1, 2, 3]

    def test_pre_envelope_entries_still_decode(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s1")
        key = "cd" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"legacy": True}))
        assert cache.get(key) == {"legacy": True}

    def test_bare_list_payload_unwrapped_correctly(self, tmp_path):
        # Only the envelope shape is unwrapped; any other dict/list is
        # returned verbatim.
        cache = ResultCache(tmp_path, salt="s1")
        key = "ef" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2]))
        assert cache.get(key) == [1, 2]


class TestInfo:
    def test_empty_cache(self, tmp_path):
        info = ResultCache(tmp_path / "nope", salt="s1").info()
        assert info["entries"] == 0
        assert info["bytes"] == 0
        assert info["stale_entries"] == 0

    def test_per_salt_accounting(self, tmp_path):
        old = ResultCache(tmp_path, salt="old")
        old.put("aa" * 32, {"v": 1})
        old.put("bb" * 32, {"v": 2})
        new = ResultCache(tmp_path, salt="new")
        new.put("cc" * 32, {"v": 3})
        info = new.info()
        assert info["entries"] == 3
        assert info["stale_entries"] == 2
        assert info["salts"]["old"]["entries"] == 2
        assert info["salts"]["new"]["entries"] == 1
        assert info["bytes"] > 0

    def test_unversioned_entries_counted(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s1")
        path = cache.path_for("dd" * 32)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"bare": 1}))
        info = cache.info()
        assert info["salts"]["(unversioned)"]["entries"] == 1
        assert info["stale_entries"] == 1


class TestPrune:
    def test_no_criteria_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s1")
        cache.put("aa" * 32, {})
        assert cache.prune() == 0
        assert cache.get("aa" * 32) == {}

    def test_stale_only(self, tmp_path):
        ResultCache(tmp_path, salt="old").put("aa" * 32, {"v": 1})
        cache = ResultCache(tmp_path, salt="new")
        cache.put("bb" * 32, {"v": 2})
        assert cache.prune(stale_only=True) == 1
        assert cache.get("bb" * 32) == {"v": 2}
        assert cache.info()["stale_entries"] == 0

    def test_max_age(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s1")
        cache.put("aa" * 32, {"old": True})
        (path,) = entry_paths(cache)
        stale_time = time.time() - 10 * 86400.0
        os.utime(path, (stale_time, stale_time))
        cache.put("bb" * 32, {"new": True})
        assert cache.prune(max_age_days=1.0) == 1
        assert cache.get("aa" * 32) is None
        assert cache.get("bb" * 32) == {"new": True}

    def test_max_bytes_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s1")
        now = time.time()
        for i, key in enumerate(["aa" * 32, "bb" * 32, "cc" * 32]):
            cache.put(key, {"i": i, "pad": "x" * 100})
            path = cache.path_for(key)
            os.utime(path, (now - (3 - i) * 1000, now - (3 - i) * 1000))
        total = cache.info()["bytes"]
        one_size = total // 3
        removed = cache.prune(max_bytes=total - one_size)
        assert removed >= 1
        # The newest entry always survives.
        assert cache.get("cc" * 32) is not None
        assert cache.get("aa" * 32) is None

    def test_max_bytes_zero_clears(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s1")
        cache.put("aa" * 32, {})
        cache.put("bb" * 32, {})
        assert cache.prune(max_bytes=0) == 2
        assert cache.info()["entries"] == 0

    def test_criteria_compose(self, tmp_path):
        ResultCache(tmp_path, salt="old").put("aa" * 32, {"v": 1})
        cache = ResultCache(tmp_path, salt="new")
        cache.put("bb" * 32, {"v": 2})
        (old_path, _) = entry_paths(cache)
        # stale + generous age: only the stale entry goes.
        assert cache.prune(stale_only=True, max_age_days=999.0) == 1
