"""Executor failure semantics under the flight recorder.

Covers the three ways a sweep item dies — the work function raising in
a worker, the worker process being killed mid-item, and an observer
callback raising after results settled — and asserts the journal tells
the truth about each (outcome, stage, attempt counts) while the
surviving results stay deterministic.
"""

import os
import signal

import pytest

from repro.exec import ResultCache, SweepExecutor
from repro.exec.executor import SweepItemError
from repro.obs.flight import FlightRecorder, journal_verdicts


def fragile(x: int) -> int:
    """Module-level worker fn: raises on one poison item."""
    if x == 3:
        raise ValueError(f"poison item {x}")
    return x * 10


def lethal(x: int) -> int:
    """Module-level worker fn: SIGKILLs its own process on the poison
    item — the pool breaks, everything else must still complete."""
    if x == 3:
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 10


def _failed(flight):
    return [r for r in flight.records if r.outcome == "failed"]


# -- work function raises ---------------------------------------------------

def test_worker_raise_serial_reraises_original():
    flight = FlightRecorder(label="t")
    ex = SweepExecutor(jobs=1, flight=flight)
    with pytest.raises(ValueError, match="poison item 3"):
        ex.map(fragile, list(range(6)))
    failed = _failed(flight)
    assert len(failed) == 1
    assert failed[0].index == 3
    assert failed[0].stage == "worker"
    assert "poison item 3" in failed[0].error


def test_worker_raise_parallel_wraps_in_sweep_item_error():
    flight = FlightRecorder(label="t")
    ex = SweepExecutor(jobs=2, flight=flight)
    with pytest.raises(SweepItemError) as excinfo:
        ex.map(fragile, list(range(6)))
    assert excinfo.value.index == 3
    assert "poison item 3" in excinfo.value.error


@pytest.mark.parametrize("jobs", [1, 2])
def test_keep_mode_returns_survivors(jobs):
    flight = FlightRecorder(label="t")
    ex = SweepExecutor(jobs=jobs, flight=flight)
    out = ex.map(fragile, list(range(6)), failures="keep")
    assert out == [0, 10, 20, None, 40, 50]
    # ``executed`` counts items that ran — the poison item did run (and
    # failed); only its result is withheld.
    assert ex.stats.executed == 6
    failed = _failed(flight)
    assert [r.index for r in failed] == [3]
    verdicts = journal_verdicts([r.as_dict() for r in flight.records])
    fleet = {v.monitor: v for v in verdicts}
    assert not fleet["fleet-failures"].ok


def test_keep_mode_skips_caching_and_callbacks_for_failures(tmp_path):
    cache = ResultCache(root=tmp_path, salt="s")
    seen: list[int] = []

    def run():
        flight = FlightRecorder(label="t")
        ex = SweepExecutor(jobs=1, cache=cache, flight=flight)
        items = list(range(6))
        out = ex.map(
            fragile, items,
            keys=[cache.key_for(i) for i in items],
            encode=lambda r: r,
            decode=lambda item, payload: payload,
            on_result=lambda item, result: seen.append(item),
            failures="keep",
        )
        return out, ex.stats, flight

    out1, stats1, _ = run()
    assert out1 == [0, 10, 20, None, 40, 50]
    assert seen == [0, 1, 2, 4, 5]  # no callback for the failed item
    # Round 2: survivors replay from cache, the poison item re-executes
    # (its failure was never cached) and fails identically.
    seen.clear()
    out2, stats2, flight2 = run()
    assert out2 == out1
    assert stats2.cache_hits == 5
    assert stats2.executed == 1
    failed = _failed(flight2)
    assert [r.index for r in failed] == [3]
    assert failed[0].status == "executed"


# -- worker killed mid-item -------------------------------------------------

def test_sigkill_mid_item_fails_only_poison_with_retries():
    flight = FlightRecorder(label="t")
    ex = SweepExecutor(jobs=2, flight=flight, retries=2)
    out = ex.map(lethal, list(range(8)), failures="keep")
    assert out[3] is None
    assert [out[i] for i in range(8) if i != 3] == [
        i * 10 for i in range(8) if i != 3
    ]
    failed = _failed(flight)
    assert [r.index for r in failed] == [3]
    assert "WorkerCrashed" in failed[0].error
    assert failed[0].attempts == 3  # 1 + retries
    # Survivors completed despite pool rebuilds.
    ok = [r for r in flight.records if r.outcome == "ok"]
    assert sorted(r.index for r in ok) == [i for i in range(8) if i != 3]


def test_sigkill_raise_mode_raises_sweep_item_error():
    flight = FlightRecorder(label="t")
    ex = SweepExecutor(jobs=2, flight=flight)
    with pytest.raises(SweepItemError) as excinfo:
        ex.map(lethal, list(range(6)))
    assert excinfo.value.index == 3
    assert "WorkerCrashed" in str(excinfo.value)


# -- observer callback raises ----------------------------------------------

@pytest.mark.parametrize("flight_on", [False, True])
def test_callback_raise_leaves_stats_settled(flight_on):
    """Satellite fix: a raising ``on_result`` must not leave stale
    accounting — stats settle before observer callbacks run, on both
    the instrumented and the recorder-off path."""
    flight = FlightRecorder(label="t") if flight_on else None
    ex = SweepExecutor(jobs=1, flight=flight)

    def boom(item, result):
        if item == 1:
            raise RuntimeError("observer exploded")

    with pytest.raises(RuntimeError, match="observer exploded"):
        ex.map(lambda x: x + 1, [0, 1, 2], on_result=boom)
    assert ex.stats.executed == 3
    assert ex.stats.total == 3
    if flight_on:
        failed = _failed(flight)
        assert len(failed) == 1
        assert failed[0].index == 1
        assert failed[0].stage == "callback"
        assert "observer exploded" in failed[0].error


def test_callback_failure_counts_once_in_phases():
    flight = FlightRecorder(label="t")
    ex = SweepExecutor(jobs=1, flight=flight)
    with pytest.raises(RuntimeError):
        ex.map(
            lambda x: x, [0, 1],
            on_result=lambda item, result: (_ for _ in ()).throw(
                RuntimeError("nope")
            ),
        )
    snap = flight.snapshot()
    # The item settled at execution time; the callback failure adds a
    # failed mark without double-counting done.
    assert snap.done == 2
    assert snap.failed == 1
