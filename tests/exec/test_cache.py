"""ResultCache: keys, round-trips, invalidation, corruption tolerance."""

import dataclasses
import json

import pytest

from repro.core.experiments import PAPER_EXPERIMENTS
from repro.errors import ConfigurationError
from repro.exec import ResultCache, canonical, stable_key
from repro.hw.battery.kibam import PAPER_BATTERY
from repro.hw.power import PAPER_POWER_MODEL, PowerMode


class TestStableKey:
    def test_deterministic(self):
        spec = PAPER_EXPERIMENTS["2B"]
        assert stable_key(spec, salt="s") == stable_key(spec, salt="s")

    def test_differs_across_specs(self):
        keys = {stable_key(spec) for spec in PAPER_EXPERIMENTS.values()}
        assert len(keys) == len(PAPER_EXPERIMENTS)

    def test_salt_changes_key(self):
        spec = PAPER_EXPERIMENTS["1"]
        assert stable_key(spec, salt="a") != stable_key(spec, salt="b")

    def test_field_change_changes_key(self):
        spec = PAPER_EXPERIMENTS["1"]
        changed = dataclasses.replace(spec, deadline_s=2.4)
        assert stable_key(spec) != stable_key(changed)

    def test_kwargs_change_changes_key(self):
        assert stable_key({"seed": 0}) != stable_key({"seed": 1})

    def test_dict_order_irrelevant(self):
        assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})

    def test_int_float_distinguished(self):
        assert stable_key(1) != stable_key(1.0)


class TestCanonical:
    def test_json_serializable(self):
        for spec in PAPER_EXPERIMENTS.values():
            json.dumps(canonical(spec))

    def test_handles_enums_and_objects(self):
        encoded = json.dumps(canonical(PAPER_POWER_MODEL))
        assert "io_activity" in encoded
        assert PowerMode.IDLE.name in encoded

    def test_function_by_qualname(self):
        assert canonical(PAPER_BATTERY) == ["fn", "repro.hw.battery.kibam.PAPER_BATTERY"]

    def test_rejects_lambdas(self):
        with pytest.raises(ConfigurationError):
            canonical(lambda: None)

    def test_private_attributes_ignored(self):
        class Thing:
            def __init__(self):
                self.value = 1
                self._derived = object()  # would not encode

        assert canonical(Thing())[2] == [["value", 1]]


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="s")
        key = cache.key_for("config")
        assert cache.get(key) is None
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_salt_invalidates(self, tmp_path):
        old = ResultCache(root=tmp_path, salt="v1")
        old.put(old.key_for("config"), {"stale": True})
        new = ResultCache(root=tmp_path, salt="v2")
        assert new.get(new.key_for("config")) is None

    def test_spec_invalidates(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="s")
        spec = PAPER_EXPERIMENTS["1"]
        cache.put(cache.key_for(spec), {"t": 6.1})
        changed = dataclasses.replace(spec, deadline_s=9.9)
        assert cache.get(cache.key_for(changed)) is None

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="s")
        key = cache.key_for("config")
        cache.put(key, {"good": 1})
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        # And the corrupted file was removed, so a re-put works cleanly.
        cache.put(key, {"good": 2})
        assert cache.get(key) == {"good": 2}

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="s")
        key = cache.key_for("config")
        cache.put(key, {"payload": list(range(100))})
        full = cache.path_for(key).read_text(encoding="utf-8")
        cache.path_for(key).write_text(full[: len(full) // 2], encoding="utf-8")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="s")
        for i in range(3):
            cache.put(cache.key_for(i), i)
        assert cache.clear() == 3
        assert cache.get(cache.key_for(0)) is None

    def test_default_salt_includes_version(self):
        import repro

        cache = ResultCache(root="unused")
        assert repro.__version__ in cache.salt
