"""Flight recorder: journal determinism, persistence, progress plane.

The contract under test is the content/telemetry split: journal
*content* (ids, outcomes, stages) is byte-identical across serial,
parallel, and cache-replayed executions of the same map, while
*telemetry* (wall/cpu/rss, worker, attempts) is honest per-execution
measurement excluded from every determinism surface.
"""

import pytest

from repro.exec import ResultCache, SweepExecutor
from repro.obs.flight import (
    FlightRecorder,
    journal_to_rows,
    journal_verdicts,
    read_journal,
    write_journal,
)
from repro.obs.store import RunRegistry


def cube(x: int) -> int:
    """Module-level so worker processes can unpickle it."""
    return x * x * x


def _run(tmp_path, jobs: int, cache=None, label: str = "t") -> FlightRecorder:
    flight = FlightRecorder(label=label)
    ex = SweepExecutor(jobs=jobs, cache=cache, flight=flight)
    keys = None
    codecs: dict = {}
    if cache is not None:
        keys = [cache.key_for(i) for i in range(8)]
        codecs = dict(encode=lambda r: r, decode=lambda item, payload: payload)
    out = ex.map(cube, list(range(8)), keys=keys, **codecs)
    assert out == [i**3 for i in range(8)]
    flight.finish()
    return flight


def test_journal_bytes_identical_serial_vs_parallel(tmp_path):
    serial = _run(tmp_path, jobs=1)
    parallel = _run(tmp_path, jobs=2)
    a = write_journal(tmp_path / "serial.jsonl", serial.records)
    b = write_journal(tmp_path / "parallel.jsonl", parallel.records)
    assert a.read_bytes() == b.read_bytes()


def test_journal_bytes_identical_across_cache_replay(tmp_path):
    cache = ResultCache(root=tmp_path / "cache", salt="s")
    live = _run(tmp_path, jobs=1, cache=cache)
    replay = _run(tmp_path, jobs=1, cache=cache)
    # The replay served everything from cache...
    assert all(r.status == "cache_hit" for r in replay.records)
    assert all(r.status == "executed" for r in live.records)
    # ...yet the canonical journal is byte-identical.
    a = write_journal(tmp_path / "live.jsonl", live.records)
    b = write_journal(tmp_path / "replay.jsonl", replay.records)
    assert a.read_bytes() == b.read_bytes()
    # Full rows (telemetry included) do differ — by design.
    full_a = journal_to_rows(live.records, full=True)
    full_b = journal_to_rows(replay.records, full=True)
    assert full_a != full_b


def test_journal_roundtrip_and_ordering(tmp_path):
    flight = _run(tmp_path, jobs=2)
    path = write_journal(tmp_path / "j.jsonl", flight.records)
    rows = read_journal(path)
    assert [r["index"] for r in rows] == list(range(8))
    assert all(r["outcome"] == "ok" for r in rows)
    assert len({r["journal_id"] for r in rows}) == 8


def test_registry_persistence_and_dedup(tmp_path):
    registry = RunRegistry(tmp_path / "runs.sqlite")
    flight = FlightRecorder(label="t", registry=registry)
    ex = SweepExecutor(jobs=1, flight=flight)
    ex.map(cube, list(range(5)))
    flight.finish()
    rows = registry.list_journal()
    assert len(rows) == 5
    # Re-recording the same records is a no-op (content-keyed).
    assert registry.record_journal(flight.records) == 0
    assert len(registry.list_journal()) == 5
    # dump_journal_rows carries content columns only.
    dump = registry.dump_journal_rows()
    assert len(dump) == 5
    assert "wall_s" not in dump[0] and "worker" not in dump[0]


def test_progress_plane_snapshot(tmp_path):
    registry = RunRegistry(tmp_path / "runs.sqlite")
    flight = FlightRecorder(label="mysweep", registry=registry)
    ex = SweepExecutor(jobs=1, flight=flight)
    ex.map(cube, list(range(4)))
    flight.finish()
    found = registry.latest_progress("mysweep")
    assert found is not None
    snap, updated_at = found
    assert snap["label"] == "mysweep"
    assert snap["done"] == 4
    assert snap["finished"] is True
    assert updated_at > 0
    # Label-less lookup attaches to the most recent plane.
    assert registry.latest_progress()[0]["label"] == "mysweep"


def test_phases_group_work(tmp_path):
    flight = FlightRecorder(label="t")
    ex = SweepExecutor(jobs=1, flight=flight)
    flight.phase("first", total=3)
    ex.map(cube, [1, 2, 3])
    flight.finish_phase(note="done early")
    flight.phase("second")
    ex.map(cube, [4, 5])
    flight.finish()
    snap = flight.snapshot()
    names = [p["name"] for p in snap.phases]
    assert names == ["first", "second"]
    assert [p["done"] for p in snap.phases] == [3, 2]
    assert snap.phases[0]["note"] == "done early"
    assert all(p["finished"] for p in snap.phases)
    assert snap.total == 5 and snap.done == 5


def test_fleet_verdicts_healthy(tmp_path):
    flight = _run(tmp_path, jobs=1)
    rows = [r.as_dict() for r in flight.records]
    verdicts = journal_verdicts(rows)
    assert {v.monitor for v in verdicts} == {
        "fleet-failures", "fleet-retries", "fleet-stragglers"
    }
    assert all(v.ok for v in verdicts)


def test_worker_lanes_and_heartbeats(tmp_path):
    flight = _run(tmp_path, jobs=2)
    lanes = [w for w in flight.workers.values() if w.name != "cache"]
    assert lanes, "parallel map should populate worker lanes"
    assert sum(w.items_done for w in lanes) == 8
    assert all(w.last_beat is not None for w in lanes)


def test_telemetry_fields_populated(tmp_path):
    flight = _run(tmp_path, jobs=1)
    rec = flight.records[0]
    assert rec.status == "executed"
    assert rec.attempts == 1
    assert rec.wall_s is not None and rec.wall_s >= 0.0
    assert rec.worker == "serial"
    # Content digest is stable against telemetry.
    import dataclasses

    twin = dataclasses.replace(rec, wall_s=99.0, worker="elsewhere")
    assert twin.journal_id == rec.journal_id


def test_export_journal_via_recorder(tmp_path):
    flight = _run(tmp_path, jobs=1)
    path = flight.export_journal(tmp_path / "out.jsonl")
    assert path.exists()
    assert len(read_journal(path)) == 8


def test_recorder_off_path_untouched():
    ex = SweepExecutor(jobs=1)
    assert ex.flight is None
    assert ex.map(cube, [2]) == [8]


def test_keep_mode_requires_flight():
    with pytest.raises(ValueError):
        SweepExecutor(jobs=1).map(cube, [1], failures="keep")
