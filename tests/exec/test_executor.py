"""SweepExecutor: ordering, parallel/serial equivalence, cache wiring."""

import pytest

from repro.exec import ResultCache, SweepExecutor


def square(x: int) -> int:
    """Module-level so worker processes can unpickle it."""
    return x * x


def test_serial_map_order():
    ex = SweepExecutor(jobs=1)
    assert ex.map(square, [3, 1, 2]) == [9, 1, 4]
    assert ex.stats.executed == 3
    assert ex.stats.cache_hits == 0


def test_parallel_matches_serial():
    items = list(range(12))
    serial = SweepExecutor(jobs=1).map(square, items)
    parallel = SweepExecutor(jobs=2).map(square, items)
    assert serial == parallel


def test_cache_short_circuits(tmp_path):
    cache = ResultCache(root=tmp_path, salt="s")
    ex = SweepExecutor(jobs=1, cache=cache)
    items = [2, 3, 4]
    keys = [cache.key_for(i) for i in items]
    first = ex.map(square, items, keys=keys,
                   encode=lambda r: r, decode=lambda item, payload: payload)
    assert ex.stats.executed == 3
    second = ex.map(square, items, keys=keys,
                    encode=lambda r: r, decode=lambda item, payload: payload)
    assert second == first == [4, 9, 16]
    assert ex.stats.executed == 0
    assert ex.stats.cache_hits == 3


def test_none_key_never_cached(tmp_path):
    cache = ResultCache(root=tmp_path, salt="s")
    ex = SweepExecutor(jobs=1, cache=cache)
    keys = [cache.key_for(1), None]
    ex.map(square, [1, 2], keys=keys,
           encode=lambda r: r, decode=lambda item, payload: payload)
    ex.map(square, [1, 2], keys=keys,
           encode=lambda r: r, decode=lambda item, payload: payload)
    assert ex.stats.cache_hits == 1
    assert ex.stats.executed == 1


def test_keys_require_codecs():
    ex = SweepExecutor(jobs=1, cache=ResultCache(root="unused", salt="s"))
    with pytest.raises(ValueError):
        ex.map(square, [1], keys=["k"])


def test_jobs_floor():
    assert SweepExecutor(jobs=0).jobs == 1
    assert SweepExecutor(jobs=-3).jobs == 1
