"""Suite-level guarantees: parallel determinism and cache round-trips."""

import pytest

from repro.core.experiments import run_paper_suite
from repro.exec import ResultCache
from tests.conftest import tiny_battery_factory

LABELS = ["1", "2"]


def _fingerprint(run):
    p = run.pipeline
    return (
        run.frames,
        run.t_hours,
        tuple(sorted(run.death_times_s.items())),
        tuple(p.result_times_s) if p else None,
        tuple(sorted(p.link_transactions.items())) if p else None,
        tuple(sorted(p.stage_stalls.items())) if p else None,
        p.events_processed if p else None,
    )


def test_parallel_bit_identical_to_serial():
    serial = run_paper_suite(LABELS, battery_factory=tiny_battery_factory)
    parallel = run_paper_suite(
        LABELS, battery_factory=tiny_battery_factory, jobs=2
    )
    assert list(serial) == list(parallel)
    for label in serial:
        assert _fingerprint(serial[label]) == _fingerprint(parallel[label])


def test_cache_round_trip_returns_identical_metrics(tmp_path):
    cache = ResultCache(root=tmp_path, salt="s")
    kwargs = dict(battery_factory=tiny_battery_factory, cache=cache)
    fresh = run_paper_suite(LABELS, **kwargs)
    assert cache.misses == len(LABELS)
    cached = run_paper_suite(LABELS, **kwargs)
    assert cache.hits == len(LABELS)
    baseline = fresh["1"].t_hours
    for label in LABELS:
        assert _fingerprint(fresh[label]) == _fingerprint(cached[label])
        assert fresh[label].metrics(baseline) == cached[label].metrics(baseline)


def test_cache_misses_on_config_change(tmp_path):
    cache = ResultCache(root=tmp_path, salt="s")
    run_paper_suite(["1"], battery_factory=tiny_battery_factory,
                    cache=cache, max_frames=5)
    run_paper_suite(["1"], battery_factory=tiny_battery_factory,
                    cache=cache, max_frames=6)
    assert cache.hits == 0
    assert cache.misses == 2


def test_explicit_default_seed_hits_cache(tmp_path):
    cache = ResultCache(root=tmp_path, salt="s")
    run_paper_suite(["1"], battery_factory=tiny_battery_factory,
                    cache=cache, max_frames=5)
    run_paper_suite(["1"], battery_factory=tiny_battery_factory,
                    cache=cache, max_frames=5, seed=0)
    assert cache.hits == 1


def test_monitored_runs_are_cached(tmp_path):
    """Monitors round-trip through the payload, so monitored runs cache."""
    cache = ResultCache(root=tmp_path, salt="s")
    kwargs = dict(battery_factory=tiny_battery_factory, cache=cache,
                  max_frames=5, monitor_interval_s=60.0)
    first = run_paper_suite(["1"], **kwargs)
    second = run_paper_suite(["1"], **kwargs)
    assert cache.misses == 1 and cache.hits == 1
    mon1 = first["1"].pipeline.monitors["node1"]
    mon2 = second["1"].pipeline.monitors["node1"]
    assert mon1.as_dict() == mon2.as_dict()
    # The decoded monitor carries no live battery; its telemetry does.
    assert mon2.battery is None and mon2.samples


def test_traced_runs_are_cached_and_parallel(tmp_path):
    """trace=True no longer forces serial, uncached execution."""
    cache = ResultCache(root=tmp_path, salt="s")
    kwargs = dict(battery_factory=tiny_battery_factory, cache=cache,
                  max_frames=5, trace=True, jobs=2)
    first = run_paper_suite(LABELS, **kwargs)
    second = run_paper_suite(LABELS, **kwargs)
    assert cache.misses == len(LABELS) and cache.hits == len(LABELS)
    for label in LABELS:
        t1, t2 = first[label].trace, second[label].trace
        assert t1 is not None and t2 is not None
        assert t1.as_dict() == t2.as_dict()
        assert t1.all_segments()  # the recorder actually recorded


def test_shared_recorder_instance_deprecated():
    from repro.sim import TraceRecorder

    shared = TraceRecorder()
    with pytest.deprecated_call():
        run_paper_suite(["1"], battery_factory=tiny_battery_factory,
                        max_frames=3, trace=shared, jobs=2)
    assert shared.all_segments()  # still fills the caller's recorder


def test_unknown_label_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        run_paper_suite(["nope"], jobs=2)


@pytest.mark.tier2
def test_full_suite_parallel_bit_identical_on_paper_battery():
    """Acceptance: the calibrated eight-experiment suite, serial vs jobs=4."""
    serial = run_paper_suite()
    parallel = run_paper_suite(jobs=4)
    assert list(serial) == list(parallel)
    for label in serial:
        assert _fingerprint(serial[label]) == _fingerprint(parallel[label])


def test_sensitivity_sweep_parallel_matches_serial():
    from repro.analysis.sensitivity import sensitivity_sweep

    serial = sensitivity_sweep(rel_changes=(-0.1,))
    parallel = sensitivity_sweep(rel_changes=(-0.1,), jobs=2)
    assert serial == parallel
